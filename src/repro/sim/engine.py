"""Discrete-event simulation kernel.

This module provides the virtual-time substrate for the whole
reproduction.  The paper drives real hardware with wall-clock
microsecond timing; we instead schedule every send, interrupt, context
switch, and completion as an event on a virtual clock measured in
microseconds.  Virtual time makes the load generator *perfectly*
precise, which is exactly the property the paper's open-loop controller
needs (Section II-A) and the property that is impossible to get from
pure Python against a wall clock.

The kernel is deliberately minimal and callback-oriented for speed:
a binary heap of ``(time, seq, Event)`` entries, a monotone sequence
number for deterministic FIFO tie-breaking, and O(1) cancellation via
tombstones.  A generator-based process API (:meth:`Simulator.spawn`) is
layered on top for the few places where sequential control flow is more
readable than callback chains.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = ["Event", "Process", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (time travel, running a stopped sim)."""


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` /
    :meth:`Simulator.at` and can be cancelled.  Cancellation is O(1):
    the heap entry stays behind as a tombstone and is skipped when
    popped.
    """

    __slots__ = ("time", "fn", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent.

        Keeps the owning simulator's live-event counter exact, which
        is what makes :attr:`Simulator.pending` O(1).
        """
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._live -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.3f} fn={name} {state}>"


class Process:
    """A generator-driven sequential activity.

    The generator yields either a float delay (in simulated
    microseconds) or ``None`` (yield control and resume immediately at
    the same timestamp).  The process ends when the generator returns.
    """

    __slots__ = ("sim", "gen", "alive", "_event")

    def __init__(self, sim: "Simulator", gen: Generator[Optional[float], None, None]):
        self.sim = sim
        self.gen = gen
        self.alive = True
        self._event: Optional[Event] = None
        self._step()

    def _step(self) -> None:
        if not self.alive:
            return
        try:
            delay = next(self.gen)
        except StopIteration:
            self.alive = False
            self._event = None
            return
        if delay is None:
            delay = 0.0
        if delay < 0:
            raise SimulationError(f"process yielded negative delay {delay!r}")
        self._event = self.sim.schedule(delay, self._step)

    def kill(self) -> None:
        """Terminate the process; any pending resume event is cancelled."""
        self.alive = False
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self.gen.close()


class Simulator:
    """Virtual-time event loop.

    Time is a float in **microseconds** — the natural unit of the
    paper's latency measurements.  Determinism guarantee: two events at
    the same timestamp fire in the order they were scheduled.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._stopped = False
        self._events_processed = 0
        #: Live (non-cancelled, not-yet-fired) events.  Maintained
        #: incrementally so :attr:`pending` never scans the heap.
        self._live = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        return self.at(self.now + delay, fn, *args)

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time!r} before now={self.now!r}"
            )
        event = Event(time, fn, args, sim=self)
        heapq.heappush(self._heap, (time, next(self._seq), event))
        self._live += 1
        return event

    def spawn(self, gen: Generator[Optional[float], None, None]) -> Process:
        """Start a generator-based process (see :class:`Process`)."""
        return Process(self, gen)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1):
        a counter maintained on schedule/cancel/fire, never a heap scan
        (load testers poll this every request at high rates)."""
        return self._live

    @property
    def events_processed(self) -> int:
        """Total events executed since construction."""
        return self._events_processed

    def peek(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if drained."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Execute the single next event.  Returns False when drained."""
        while self._heap:
            time, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = time
            self._events_processed += 1
            self._live -= 1
            event.cancelled = True  # fired; a late cancel() must be a no-op
            event.fn(*event.args)
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the event heap drains (or ``max_events`` executed)."""
        self._stopped = False
        executed = 0
        while not self._stopped:
            if max_events is not None and executed >= max_events:
                return
            if not self.step():
                return
            executed += 1

    def run_until(self, time: float) -> None:
        """Run all events with timestamp <= ``time`` and advance the clock.

        The clock lands exactly on ``time`` even if no event fires
        there, so back-to-back ``run_until`` calls observe a monotone
        clock.
        """
        if time < self.now:
            raise SimulationError(
                f"run_until({time!r}) is before now={self.now!r}"
            )
        self._stopped = False
        while not self._stopped:
            nxt = self.peek()
            if nxt is None or nxt > time:
                break
            self.step()
        if not self._stopped:
            self.now = max(self.now, time)

    def stop(self) -> None:
        """Stop the currently executing :meth:`run` / :meth:`run_until`."""
        self._stopped = True

    def drain(self, events: Iterable[Event]) -> None:
        """Cancel a batch of events (convenience for teardown)."""
        for event in events:
            event.cancel()
