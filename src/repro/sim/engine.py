"""Discrete-event simulation kernel.

This module provides the virtual-time substrate for the whole
reproduction.  The paper drives real hardware with wall-clock
microsecond timing; we instead schedule every send, interrupt, context
switch, and completion as an event on a virtual clock measured in
microseconds.  Virtual time makes the load generator *perfectly*
precise, which is exactly the property the paper's open-loop controller
needs (Section II-A) and the property that is impossible to get from
pure Python against a wall clock.

The kernel is deliberately minimal and callback-oriented for speed:
a binary heap of ``(time, seq, Event)`` entries, a monotone sequence
number for deterministic FIFO tie-breaking, and O(1) cancellation via
tombstones.  A generator-based process API (:meth:`Simulator.spawn`) is
layered on top for the few places where sequential control flow is more
readable than callback chains.

Hot-path design notes (this kernel executes hundreds of thousands of
events per simulated second, so per-event overhead is the throughput
of the whole library):

* ``run`` / ``run_until`` are fused loops: heap access, tombstone
  skipping, clock advance, and dispatch all happen inline with hot
  attribute lookups bound into locals, instead of re-entering
  ``step()`` per event.
* Tombstone discarding is a single shared pop path
  (:meth:`Simulator._prune`) used by ``peek``, ``step``, and both run
  loops, so an event is never examined twice.  ``peek`` only discards
  already-dead tombstones — no live state changes on a read.
* Fired :class:`Event` objects are recycled through a small pool.
  Recycling is only safe when the kernel holds the *sole* remaining
  reference (``sys.getrefcount(ev) == 2``: the local plus the refcount
  probe itself); events still referenced by controllers or processes
  (which may cancel them late) are simply left to the garbage
  collector.
"""

from __future__ import annotations

import heapq
import sys
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = ["Event", "Process", "Simulator", "SimulationError"]

_heappush = heapq.heappush
_heappop = heapq.heappop
_getrefcount = sys.getrefcount

#: Upper bound on pooled Event objects per simulator (plenty for any
#: realistic number of simultaneously in-flight events between pops).
_POOL_MAX = 4096


class SimulationError(RuntimeError):
    """Raised for kernel misuse (time travel, running a stopped sim)."""


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` /
    :meth:`Simulator.at` and can be cancelled.  Cancellation is O(1):
    the heap entry stays behind as a tombstone and is skipped when
    popped.
    """

    __slots__ = ("time", "fn", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent.

        Counts the tombstone left in the owning simulator's heap, which
        is what makes :attr:`Simulator.pending` O(1): live events are
        ``len(heap) - tombstones``, with no bookkeeping at all on the
        schedule/fire fast path.
        """
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._tombstones += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.3f} fn={name} {state}>"


class Process:
    """A generator-driven sequential activity.

    The generator yields either a float delay (in simulated
    microseconds) or ``None`` (yield control and resume immediately at
    the same timestamp).  The process ends when the generator returns.
    """

    __slots__ = ("sim", "gen", "alive", "_event")

    def __init__(self, sim: "Simulator", gen: Generator[Optional[float], None, None]):
        self.sim = sim
        self.gen = gen
        self.alive = True
        self._event: Optional[Event] = None
        self._step()

    def _step(self) -> None:
        if not self.alive:
            return
        try:
            delay = next(self.gen)
        except StopIteration:
            self.alive = False
            self._event = None
            return
        if delay is None:
            delay = 0.0
        if delay < 0:
            raise SimulationError(f"process yielded negative delay {delay!r}")
        self._event = self.sim.schedule(delay, self._step)

    def kill(self) -> None:
        """Terminate the process; any pending resume event is cancelled."""
        self.alive = False
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self.gen.close()


class Simulator:
    """Virtual-time event loop.

    Time is a float in **microseconds** — the natural unit of the
    paper's latency measurements.  Determinism guarantee: two events at
    the same timestamp fire in the order they were scheduled.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._seqn = 0
        self._stopped = False
        self._events_processed = 0
        #: Cancelled entries still sitting in the heap.  ``pending`` is
        #: ``len(heap) - tombstones`` — exact, O(1), and free on the
        #: schedule/fire fast path (only cancel() and tombstone pops,
        #: both rare, touch the counter).
        self._tombstones = 0
        #: Recycled Event objects (see module docstring).
        self._pool: List[Event] = []

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        time = self.now + delay
        pool = self._pool
        if pool:
            event = pool.pop()
            if __debug__:
                # Stale-handle tripwire: a pooled Event must be a dead
                # tombstone owned by *this* kernel.  A live or foreign
                # event here means a handle crossed a partition boundary
                # and was cancelled/rescheduled after recycling — which
                # would silently retarget an unrelated future event.
                assert event.cancelled and event.fn is None, (
                    "pooled Event escaped with live state; a stale handle "
                    "was recycled while still scheduled"
                )
                assert event._sim is self, (
                    "Event recycled across a simulator/partition boundary"
                )
            event.time = time
            event.fn = fn
            event.args = args
            event.cancelled = False
        else:
            event = Event(time, fn, args, sim=self)
        self._seqn = seq = self._seqn + 1
        _heappush(self._heap, (time, seq, event))
        return event

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time!r} before now={self.now!r}"
            )
        pool = self._pool
        if pool:
            event = pool.pop()
            if __debug__:
                assert event.cancelled and event.fn is None, (
                    "pooled Event escaped with live state; a stale handle "
                    "was recycled while still scheduled"
                )
                assert event._sim is self, (
                    "Event recycled across a simulator/partition boundary"
                )
            event.time = time
            event.fn = fn
            event.args = args
            event.cancelled = False
        else:
            event = Event(time, fn, args, sim=self)
        self._seqn = seq = self._seqn + 1
        _heappush(self._heap, (time, seq, event))
        return event

    def spawn(self, gen: Generator[Optional[float], None, None]) -> Process:
        """Start a generator-based process (see :class:`Process`)."""
        return Process(self, gen)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1):
        the heap length minus the tombstone count, never a heap scan
        (load testers poll this every request at high rates)."""
        return len(self._heap) - self._tombstones

    @property
    def events_processed(self) -> int:
        """Total events executed since construction."""
        return self._events_processed

    def _prune(self) -> None:
        """Discard dead tombstones from the heap top.

        The single shared pop path: ``peek``, ``step``, ``run``, and
        ``run_until`` all rely on the invariant that after pruning the
        heap top (if any) is a live event.  Dead entries may be pooled
        for reuse when nothing else references them.
        """
        heap = self._heap
        pool = self._pool
        while heap and heap[0][2].cancelled:
            event = _heappop(heap)[2]
            self._tombstones -= 1
            if _getrefcount(event) == 2 and len(pool) < _POOL_MAX:
                event.fn = None
                event.args = ()
                pool.append(event)

    def peek(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if drained.

        Logically read-only: the only mutation is discarding already
        dead tombstones (via the shared :meth:`_prune` path), which no
        observable state depends on.
        """
        self._prune()
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Execute the single next event.  Returns False when drained."""
        self._prune()
        heap = self._heap
        if not heap:
            return False
        time, _, event = _heappop(heap)
        self.now = time
        self._events_processed += 1
        event.cancelled = True  # fired; a late cancel() must be a no-op
        fn = event.fn
        args = event.args
        if _getrefcount(event) == 2 and len(self._pool) < _POOL_MAX:
            event.fn = None
            event.args = ()
            self._pool.append(event)
        del event
        fn(*args)
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event heap drains (or ``max_events`` executed).

        Returns the number of events executed by this call, which lets
        slice-driving callers (e.g. ``TestBench.run_until``) detect a
        drained heap without a separate ``peek``.
        """
        self._stopped = False
        heap = self._heap
        pool = self._pool
        limit = float("inf") if max_events is None else max_events
        executed = 0
        while heap and executed < limit:
            if self._stopped:
                break
            time, _, event = _heappop(heap)
            if event.cancelled:
                # Tombstone: recycle when nothing else references it.
                self._tombstones -= 1
                if _getrefcount(event) == 2 and len(pool) < _POOL_MAX:
                    event.fn = None
                    event.args = ()
                    pool.append(event)
                continue
            self.now = time
            event.cancelled = True  # fired; late cancel() is a no-op
            executed += 1
            fn = event.fn
            args = event.args
            if _getrefcount(event) == 2 and len(pool) < _POOL_MAX:
                event.fn = None
                event.args = ()
                pool.append(event)
            del event
            fn(*args)
        self._events_processed += executed
        return executed

    def run_until(self, time: float) -> int:
        """Run all events with timestamp <= ``time`` and advance the clock.

        The clock lands exactly on ``time`` even if no event fires
        there, so back-to-back ``run_until`` calls observe a monotone
        clock.  Returns the number of events executed.

        A single fused batch loop: the old implementation alternated
        ``peek()`` (which popped tombstones and read the top) with
        ``step()`` (which re-examined the same top entry); here every
        heap entry is popped and examined exactly once.
        """
        if time < self.now:
            raise SimulationError(
                f"run_until({time!r}) is before now={self.now!r}"
            )
        self._stopped = False
        heap = self._heap
        pool = self._pool
        executed = 0
        while heap:
            if self._stopped:
                break
            head = heap[0]
            event = head[2]
            if event.cancelled:
                _heappop(heap)
                self._tombstones -= 1
                if _getrefcount(event) == 3 and len(pool) < _POOL_MAX:
                    # 3: `head`, `event`, and the refcount probe — the
                    # popped tuple is gone, nothing external remains.
                    del head
                    event.fn = None
                    event.args = ()
                    pool.append(event)
                continue
            t = head[0]
            if t > time:
                break
            _heappop(heap)
            del head
            self.now = t
            event.cancelled = True  # fired; late cancel() is a no-op
            executed += 1
            fn = event.fn
            args = event.args
            if _getrefcount(event) == 2 and len(pool) < _POOL_MAX:
                event.fn = None
                event.args = ()
                pool.append(event)
            del event
            fn(*args)
        self._events_processed += executed
        if not self._stopped and self.now < time:
            self.now = time
        return executed

    def run_window(self, limit: float) -> int:
        """Execute every event with timestamp strictly below ``limit``.

        The conservative-window primitive for partitioned execution
        (:mod:`repro.sim.partition`): a sub-kernel may safely run all
        events below the window barrier, because the partitioning
        lookahead guarantees no cross-partition event can arrive with a
        timestamp under the barrier.  Unlike :meth:`run_until` the
        clock is **not** advanced to ``limit`` — it stays on the last
        executed event, so the final merged clock equals the serial
        kernel's (``max`` over sub-kernels of the last event time).

        Returns the number of events executed.
        """
        heap = self._heap
        pool = self._pool
        executed = 0
        while heap:
            head = heap[0]
            event = head[2]
            if event.cancelled:
                _heappop(heap)
                self._tombstones -= 1
                if _getrefcount(event) == 3 and len(pool) < _POOL_MAX:
                    # 3: `head`, `event`, and the refcount probe.
                    del head
                    event.fn = None
                    event.args = ()
                    pool.append(event)
                continue
            t = head[0]
            if t >= limit:
                break
            _heappop(heap)
            del head
            self.now = t
            event.cancelled = True  # fired; late cancel() is a no-op
            executed += 1
            fn = event.fn
            args = event.args
            if _getrefcount(event) == 2 and len(pool) < _POOL_MAX:
                event.fn = None
                event.args = ()
                pool.append(event)
            del event
            fn(*args)
        self._events_processed += executed
        return executed

    def next_time(self) -> float:
        """Timestamp of the next live event, or ``inf`` when drained.

        The window-barrier variant of :meth:`peek`: partitioned
        coordinators take a ``min`` across sub-kernels, for which
        ``inf`` composes and ``None`` does not.
        """
        self._prune()
        return self._heap[0][0] if self._heap else float("inf")

    def sync_now(self, time: float) -> None:
        """Advance the idle clock to ``time`` without executing events.

        Used at partitioned finalization: every sub-kernel's clock is
        synchronized to the global last-event time so rate-style
        readings (utilizations divide by ``now``) match the serial
        kernel exactly.  Rewinding is refused.
        """
        if time < self.now:
            raise SimulationError(
                f"sync_now({time!r}) would rewind the clock (now={self.now!r})"
            )
        self.now = time

    def stop(self) -> None:
        """Stop the currently executing :meth:`run` / :meth:`run_until`."""
        self._stopped = True

    def drain(self, events: Iterable[Event]) -> None:
        """Cancel a batch of events (convenience for teardown)."""
        for event in events:
            event.cancel()
