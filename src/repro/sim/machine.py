"""Machine assembly: server and client hosts.

:class:`ServerMachine` wires the CPU complex, NUMA memory, NIC, and
kernel-path models into the request pipeline the paper's system under
test executes::

    NIC arrival -> RX interrupt on the RSS-selected core
                -> worker-thread service on the connection's core
                   (frequency-, NUMA-, and wake-cost-aware)
                -> [optional async backend phase, for mcrouter]
                -> response TX

:class:`ClientMachine` models a load-tester host as a single
generator-thread core with per-request CPU costs plus the fixed kernel
path of :mod:`repro.sim.kernel`.  This is where the paper's
*client-side queueing bias* (Section II-C) physically lives: an
inefficient or over-driven client queues its own sends and receive
callbacks, polluting the user-level measurement while tcpdump at the
NIC stays clean.

**Performance hysteresis** (Section II-D, Fig. 4) also lives here: each
:meth:`ServerMachine.boot` samples hidden state — the thread-to-core
mapping, the connection-to-thread assignment offset, per-connection
buffer placements, and a global placement-quality multiplier — so each
boot converges to its own latency level no matter how many samples a
single run collects.

**Partitioning contract.**  Every machine schedules exclusively on its
own ``self.sim`` — the sub-kernel owning its rack when the run is
sharded (:mod:`repro.sim.partition`), the single kernel otherwise —
and all cross-host interaction flows through :class:`Topology` paths.
That affinity is what lets the partition layer cut the simulation at
rack boundaries without touching this module: the only entry points a
cut channel replays are :meth:`ServerMachine.receive` and
:meth:`ClientMachine.deliver`, and both carry ``__debug__`` tripwires
against a window-boundary frame delivering the same request twice.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional

import numpy as np

from ..workloads.base import Request, Workload
from .cpu import Core, CpuComplex, CpuConfig, Job
from .engine import Simulator
from .kernel import KernelConfig
from .memory import BufferPlacement, NumaConfig, NumaMemory
from .nic import Nic, NicConfig
from .rng import ScopedRng

__all__ = [
    "HardwareSpec",
    "ServerConnection",
    "ServerMachine",
    "ClientSpec",
    "ClientMachine",
    "AntagonistConfig",
    "AntagonistProcess",
]


@dataclass
class HardwareSpec:
    """Full hardware description of one server (the paper's Table II).

    The defaults model the paper's dual-socket Xeon E5-2660 v2 with a
    16-queue 10 GbE NIC, scaled to a small core count for simulation
    speed (per-core utilization, not machine size, drives the queueing
    behaviour under study).
    """

    cpu: CpuConfig = field(default_factory=CpuConfig)
    numa: NumaConfig = field(default_factory=NumaConfig)
    nic: NicConfig = field(default_factory=NicConfig)
    kernel: KernelConfig = field(default_factory=KernelConfig)
    #: Std-dev of the per-boot lognormal placement-quality multiplier
    #: applied to all compute work (hysteresis, Fig. 4).
    boot_quality_sigma: float = 0.005

    def describe(self) -> Dict[str, str]:
        """Rows of a Table II-style hardware summary."""
        return {
            "Processor": (
                f"{self.cpu.sockets}-socket simulated Xeon-class, "
                f"{self.cpu.cores_per_socket} cores/socket @ "
                f"{self.cpu.base_freq_ghz:.1f} GHz (turbo +{self.cpu.turbo_bonus_ghz:.1f})"
            ),
            "DRAM": f"{self.cpu.sockets}-node NUMA, policy={self.numa.policy}",
            "Ethernet": f"10GbE model, {self.nic.num_queues} RSS queues, affinity={self.nic.affinity}",
            "Kernel": f"fixed-path model, client RTT overhead {self.kernel.client_round_trip_us:.0f} us",
        }


@dataclass
class ServerConnection:
    """Server-side state of one client connection (fixed at accept)."""

    conn_id: int
    worker_core: Core
    irq_core: Core
    placement: BufferPlacement


class ServerMachine:
    """The system under test: cores, NUMA memory, NIC, and kernel path
    assembled into the request-service pipeline described in the module
    docstring, with per-boot hidden placement state."""

    def __init__(
        self,
        sim: Simulator,
        spec: HardwareSpec,
        workload: Workload,
        rng: ScopedRng,
        name: str = "server",
    ):
        self.sim = sim
        self.spec = spec
        self.workload = workload
        self.rng = rng
        self.name = name
        self.cpu = CpuComplex(sim, spec.cpu)
        self.nic = Nic(spec.nic, self.cpu)
        self.memory = NumaMemory(spec.numa, spec.cpu.sockets, rng.stream("numa"))
        self._service_rng = rng.stream("service")
        # Batched service-profile sampler: workloads whose noise draws
        # are homogeneous (memcached) pre-sample blocks on the same
        # stream bit-identically; others fall back to scalar profile().
        self._profile = workload.profile_sampler(self._service_rng)
        self._schedule = sim.schedule
        self._conns: Dict[int, ServerConnection] = {}
        self.requests_served = 0
        # Boot state; populated by boot().
        self.boot_quality = 1.0
        self._thread_core_order: List[Core] = list(self.cpu.cores)
        self._accept_counter = 0
        self.booted = False

    # ------------------------------------------------------------------
    # boot-time hidden state (hysteresis)
    # ------------------------------------------------------------------
    def boot(self) -> None:
        """(Re)start the server, sampling fresh hidden placement state.

        Each boot:

        * shuffles the worker-thread-to-core mapping (the OS places
          threads differently every start),
        * restarts the connection-accept round-robin from a random
          offset, and
        * draws a lognormal placement-quality multiplier applied to all
          compute work (memory layout / TLB / cache-conflict luck).

        Together these make independent runs converge to *different*
        latency levels — the paper's performance hysteresis.
        """
        boot_rng = self.rng.stream("boot")
        order = list(self.cpu.cores)
        boot_rng.shuffle(order)
        self._thread_core_order = order
        self._accept_counter = int(boot_rng.integers(0, len(order)))
        sigma = self.spec.boot_quality_sigma
        self.boot_quality = float(np.exp(boot_rng.normal(0.0, sigma))) if sigma > 0 else 1.0
        self._conns.clear()
        self.requests_served = 0
        self.booted = True

    def accept(self, conn_id: int) -> ServerConnection:
        """Accept a connection: pin it to a worker and place its buffer."""
        if not self.booted:
            raise RuntimeError("ServerMachine.boot() must be called before accept()")
        if conn_id in self._conns:
            raise ValueError(f"connection {conn_id} already accepted")
        worker = self._thread_core_order[self._accept_counter % len(self._thread_core_order)]
        self._accept_counter += 1
        conn = ServerConnection(
            conn_id=conn_id,
            worker_core=worker,
            irq_core=self.nic.irq_core(conn_id),
            placement=self.memory.place_buffer(),
        )
        self._conns[conn_id] = conn
        return conn

    def connection(self, conn_id: int) -> ServerConnection:
        return self._conns[conn_id]

    # ------------------------------------------------------------------
    # request pipeline
    # ------------------------------------------------------------------
    def receive(self, request: Request, respond: Callable[[Request], None]) -> None:
        """Handle a request arriving at the server NIC.

        ``respond`` is invoked once the response has left the server
        NIC (with ``t_server_nic_out`` stamped); the caller owns the
        return network path.
        """
        conn = self._conns.get(request.conn_id)
        if conn is None:
            raise KeyError(f"request on unknown connection {request.conn_id}")
        assert math.isnan(request.t_server_nic_in), (
            f"request {request.req_id} on conn {request.conn_id} entered "
            "the server pipeline twice (duplicated partition import?)"
        )
        request.t_server_nic_in = self.sim.now
        irq_cost = self.nic.irq_cost_us(conn.irq_core) + self.spec.kernel.server_rx_us
        irq_job = Job(
            work_us=0.0,
            fixed_us=irq_cost,
            on_done=self._dispatch_worker,
            on_done_args=(request, conn, respond),
        )
        conn.irq_core.irq_us += irq_cost
        conn.irq_core.submit(irq_job)

    def _dispatch_worker(
        self,
        _duration: float,
        request: Request,
        conn: ServerConnection,
        respond: Callable[[Request], None],
    ) -> None:
        profile = self._profile(request)
        wake = self.nic.wake_cost_us(conn.irq_core, conn.worker_core)
        mem_cost = None
        if profile.mem_accesses > 0:
            mem_cost = partial(
                self._buffer_access_cost, conn.placement, profile.mem_accesses
            )
        if request.t_service_start != request.t_service_start:  # still NaN
            request.t_service_start = self.sim.now
        job = Job(
            work_us=profile.work_us * self.boot_quality,
            fixed_us=profile.fixed_us + wake,
            mem_cost=mem_cost,
            on_done=self._phase_done,
            on_done_args=(request, conn, profile, respond),
        )
        conn.worker_core.submit(job)

    def _buffer_access_cost(
        self, placement: BufferPlacement, accesses: int, core: Core
    ) -> float:
        return self.memory.access_cost_us(placement, core, accesses)

    def _phase_done(self, _duration, request, conn, profile, respond) -> None:
        if profile.backend_wait_us > 0 or profile.post_work_us > 0:
            # Proxy workload: wait off-core for the backend, then run
            # the response-assembly phase on the same worker core.
            self._schedule(
                profile.backend_wait_us,
                self._backend_returned,
                request,
                conn,
                profile,
                respond,
            )
        else:
            self._complete(request, respond)

    def _backend_returned(self, request, conn, profile, respond) -> None:
        job = Job(
            work_us=profile.post_work_us * self.boot_quality,
            fixed_us=0.0,
            on_done=self._post_work_done,
            on_done_args=(request, respond),
        )
        conn.worker_core.submit(job)

    def _post_work_done(self, _duration, request, respond) -> None:
        self._complete(request, respond)

    def _complete(self, request: Request, respond: Callable[[Request], None]) -> None:
        request.t_service_end = self.sim.now
        # Response TX: fixed kernel cost, pipelined (does not occupy a
        # worker core in this model).
        self._schedule(
            self.spec.kernel.server_tx_us, self._send_response, request, respond
        )

    def _send_response(self, request: Request, respond: Callable[[Request], None]) -> None:
        request.t_server_nic_out = self.sim.now
        self.requests_served += 1
        respond(request)

    # ------------------------------------------------------------------
    # sizing helpers
    # ------------------------------------------------------------------
    def estimated_service_us(self) -> float:
        """Rough mean per-request on-core time (base frequency).

        Includes worker compute, average memory cost (assuming the
        policy's typical remote fraction at mid utilization), the IRQ
        handler, and kernel RX — i.e. everything that occupies cores.
        Used to translate a target utilization into an arrival rate.
        """
        mean_core = self.workload.mean_service_us()
        irq = self.spec.nic.irq_rx_us + self.spec.kernel.server_rx_us
        wake = 0.5 * (self.spec.nic.wake_same_socket_us + self.spec.nic.wake_cross_socket_us)
        return mean_core + irq + wake

    def arrival_rate_for_utilization(self, utilization: float) -> float:
        """Requests per microsecond that load the machine to roughly
        ``utilization`` (of all cores)."""
        if not 0.0 < utilization < 1.0:
            raise ValueError("utilization must be in (0, 1)")
        service = self.estimated_service_us()
        return utilization * self.spec.cpu.total_cores / service

    def measured_utilization(self) -> float:
        """Busy fraction of all cores since the simulation started."""
        if self.sim.now <= 0:
            return 0.0
        total = self.cpu.total_busy_us()
        return min(1.0, total / (self.sim.now * self.spec.cpu.total_cores))


@dataclass
class AntagonistConfig:
    """A colocated background process sharing a socket with the
    service under test.

    TailBench++-style interference: the antagonist submits bursts of
    compute to the cores of one socket of a :class:`ServerMachine`, so
    requests whose worker or IRQ core lives on that socket queue
    behind it, and the socket's thermal headroom (Turbo) erodes under
    the extra power draw.  ``rate_rps == 0`` disables the antagonist —
    the natural "off" level of a scenario factor.
    """

    #: Burst arrival rate (exponential gaps), bursts per second.
    rate_rps: float = 2_000.0
    #: Frequency-scaled compute per burst.
    work_us: float = 50.0
    #: Frequency-independent cost per burst (I/O, lock handoffs).
    fixed_us: float = 0.0
    #: Which socket of the host machine the antagonist is pinned to.
    socket: int = 0

    def __post_init__(self) -> None:
        if self.rate_rps < 0:
            raise ValueError("rate_rps must be non-negative")
        if self.work_us < 0 or self.fixed_us < 0:
            raise ValueError("antagonist costs must be non-negative")
        if self.socket < 0:
            raise ValueError("socket must be non-negative")


class AntagonistProcess:
    """Drives one :class:`AntagonistConfig` against one server machine.

    Bursts land round-robin on the pinned socket's cores — the FIFO
    core queues do the rest: colocated interference is ordinary
    queueing, not a synthetic latency adder, so it interacts with
    every hardware factor (governor ramps, turbo headroom, NUMA)
    exactly the way a real noisy neighbour does.
    """

    def __init__(
        self,
        sim: Simulator,
        server: "ServerMachine",
        config: AntagonistConfig,
        rng,
        name: str = "antagonist",
    ):
        n_sockets = server.spec.cpu.sockets
        if config.socket >= n_sockets:
            raise ValueError(
                f"antagonist socket {config.socket} out of range for "
                f"{server.name!r} ({n_sockets} sockets)"
            )
        self.sim = sim
        self.server = server
        self.config = config
        self.name = name
        self._rng = rng
        self._cores = server.cpu.cores_on_socket(config.socket)
        self._mean_gap_us = 1e6 / config.rate_rps if config.rate_rps > 0 else 0.0
        self._running = False
        self._pending = None
        self._next_core = 0
        self.bursts_submitted = 0

    def start(self) -> None:
        if self.config.rate_rps <= 0:
            return  # disabled (the factor's "off" level)
        if self._running:
            raise RuntimeError("antagonist already started")
        self._running = True
        # Random initial phase, mirroring the open-loop controller.
        phase = float(self._rng.uniform(0.0, self._mean_gap_us))
        self._pending = self.sim.schedule(phase, self._fire)

    def stop(self) -> None:
        self._running = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _fire(self) -> None:
        if not self._running:
            return
        cfg = self.config
        core = self._cores[self._next_core]
        self._next_core = (self._next_core + 1) % len(self._cores)
        self.bursts_submitted += 1
        gap = float(self._rng.exponential(self._mean_gap_us))
        self._pending = self.sim.schedule(gap, self._fire)
        core.submit(Job(work_us=cfg.work_us, fixed_us=cfg.fixed_us))


@dataclass
class ClientSpec:
    """A load-tester host.

    ``tx_cpu_us`` / ``rx_cpu_us`` are the *user-space* per-request CPU
    costs of the load tester software on its generator thread; they
    determine the client's capacity and hence how quickly it starts
    queueing (CloudSuite's single inefficient client vs Treadmill's
    lock-free design).  The kernel path costs come from
    :class:`~repro.sim.kernel.KernelConfig` and are pipelined latency,
    not generator-thread time.
    """

    tx_cpu_us: float = 1.2
    rx_cpu_us: float = 1.2
    kernel: KernelConfig = field(default_factory=KernelConfig)

    def __post_init__(self) -> None:
        if self.tx_cpu_us < 0 or self.rx_cpu_us < 0:
            raise ValueError("client CPU costs must be non-negative")

    @property
    def capacity_rps(self) -> float:
        """Sustainable requests/second of the generator thread."""
        per_req = self.tx_cpu_us + self.rx_cpu_us
        return 1e6 / per_req if per_req > 0 else float("inf")


class ClientMachine:
    """A load-tester host: one generator-thread core + kernel path.

    The load tester calls :meth:`issue`; the machine stamps the user,
    NIC, and kernel timestamps and invokes :attr:`response_handler` in
    user space when the reply has traversed the whole path back.  The
    harness wires ``send_packet`` (put a request on the wire toward the
    server) and the load tester installs ``response_handler``.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: ClientSpec,
        name: str,
        send_packet: Callable[[Request], None],
        capture=None,
    ):
        self.sim = sim
        self.spec = spec
        self.name = name
        #: Puts a request packet on the wire (wired by the harness).
        self._send_packet = send_packet
        #: User-space callback for completed responses (set by the
        #: load tester before issuing).
        self.response_handler: Optional[Callable[[Request], None]] = None
        self.capture = capture
        # Single-server queue for the generator thread.
        cpu_cfg = CpuConfig(sockets=1, cores_per_socket=1, governor="performance")
        self._cpu = CpuComplex(sim, cpu_cfg)
        self._core = self._cpu.cores[0]
        # Hot-path caches: pre-bound kernel schedule and the two fixed
        # kernel crossing costs (dataclass attribute chains otherwise).
        self._schedule = sim.schedule
        self._tx_kernel_us = spec.kernel.client_tx_us
        self._rx_kernel_us = spec.kernel.client_rx_us
        self.requests_issued = 0
        self.responses_received = 0

    @property
    def core(self) -> Core:
        return self._core

    def issue(self, request: Request) -> None:
        """Send ``request`` now (user-space intent time = now)."""
        request.t_user_send = self.sim.now
        request.client_name = self.name
        self.requests_issued += 1
        job = Job(
            work_us=0.0,
            fixed_us=self.spec.tx_cpu_us,
            on_done=self._after_tx_cpu,
            on_done_args=(request,),
        )
        self._core.submit(job)

    def _after_tx_cpu(self, _duration: float, request: Request) -> None:
        # Kernel TX path (pipelined), then the wire.
        self._schedule(self._tx_kernel_us, self._to_wire, request)

    def _to_wire(self, request: Request) -> None:
        request.t_nic_send = self.sim.now
        if self.capture is not None:
            self.capture.record_tx(request)
        self._send_packet(request)

    def deliver(self, request: Request) -> None:
        """Response packet arrived at this client's NIC."""
        assert math.isnan(request.t_nic_recv), (
            f"request {request.req_id} delivered to client "
            f"{self.name!r} twice (duplicated partition import?)"
        )
        request.t_nic_recv = self.sim.now
        if self.capture is not None:
            self.capture.record_rx(request)
        self._schedule(self._rx_kernel_us, self._rx_user, request)

    def _rx_user(self, request: Request) -> None:
        job = Job(
            work_us=0.0,
            fixed_us=self.spec.rx_cpu_us,
            on_done=self._complete,
            on_done_args=(request,),
        )
        self._core.submit(job)

    def _complete(self, _duration: float, request: Request) -> None:
        request.t_user_recv = self.sim.now
        self.responses_received += 1
        if self.response_handler is not None:
            self.response_handler(request)

    def utilization(self) -> float:
        """Busy fraction of the generator thread since sim start."""
        if self.sim.now <= 0:
            return 0.0
        return min(1.0, self._core.busy_us / self.sim.now)
