"""Conservative parallel DES: one simulation, many sub-kernels.

The serial kernel (:mod:`repro.sim.engine`) executes one global event
heap.  This module shards that heap: hosts are grouped into
**sub-kernels** (per rack when the partition count allows, splitting
within racks otherwise), each owning its own event queue, and all
sub-kernels advance in lockstep through **conservative time windows**.

Why this is exact, not approximate
----------------------------------

Every cross-host interaction travels the network model
(:mod:`repro.sim.network`), and every network edge imposes a minimum
propagation delay before a packet can be observed by another host.
The minimum over all edges — :meth:`Topology.lookahead_us` — is the
**lookahead** ``L``.  With ``gmin`` the earliest pending event across
all sub-kernels, every event below the barrier ``gmin + L`` is safe to
execute: any message it emits toward another partition carries a
timestamp ``>= its emit time + L >= gmin + L`` (float addition is
monotone), i.e. at or beyond the barrier.  So each window runs without
null messages, and cross-partition events are exchanged only at window
boundaries.

Exchanged events are inserted into the destination kernel in a
deterministic total order — ``(timestamp, source partition, per-window
sequence)`` — so two boundary events sharing a timestamp always enqueue
in the same order regardless of which partition reported first.
Events at equal timestamps in *different* kernels commute (they touch
disjoint hosts; cross-host effects only flow through the network,
which is itself an event), so the merged execution reproduces the
serial kernel's results bit for bit.  The one caveat: an *exact*
float-equal timestamp collision between a boundary event and an
unrelated local event has no serial-order witness; with continuous
stochastic delays such collisions have probability zero, and the
golden-digest gates would catch one if it ever mattered.

Event-count parity
------------------

``RunResult.events_processed`` is part of the bit-identical contract,
so a cut edge must cost exactly as many events as its serial
counterpart:

* same-rack cut: the source side uses :meth:`Link.transmit` (FIFO
  bookkeeping, **no event**) and exports the delivery time; the import
  fires the destination downlink at that time — 2 events, like the
  serial uplink→downlink chain.
* cross-rack cut: the uplink schedules a local *traverse* event that
  draws the spine delay from the source host's own stream and exports;
  the import fires the downlink — 3 events, like serial
  uplink→spine→downlink.

Execution modes
---------------

:func:`run_windows` is the one window-barrier loop, written against a
shard-handle interface.  In-process handles drive sub-kernels
directly (the correctness reference); the multi-process mode
(:mod:`repro.measure.partitionproc`) drives identical logic over the
distributed executor's frame protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from operator import attrgetter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .engine import SimulationError, Simulator

__all__ = [
    "SimError",
    "SubKernel",
    "assign_shards",
    "PartitionedSimulator",
    "PartitionedBuild",
    "CoordinatorStats",
    "LocalShardHandle",
    "run_windows",
    "drive_partitioned",
    "collect_partial",
]

#: The ISSUE-facing alias: partition-protocol failures raise the
#: kernel's own :class:`SimulationError` — one error type for "the
#: simulation could not proceed", whether serial or sharded.
SimError = SimulationError


class SubKernel(Simulator):
    """One partition's event queue plus its boundary mailboxes."""

    def __init__(self, shard_id: int):
        super().__init__()
        self.shard_id = shard_id
        #: Boundary events produced this window: ``(time, cid, payload)``
        #: in emission order (the per-window sequence of the tiebreak).
        self.outbox: List[Tuple[float, int, object]] = []
        #: ``(time, instance name)`` completion records for this window.
        self.completions: List[Tuple[float, str]] = []


def assign_shards(
    hosts: Sequence[Tuple[str, str]], n_shards: int
) -> Dict[str, int]:
    """Deterministically map hosts to sub-kernels, rack-affine.

    ``hosts`` is ``(name, rack)`` in construction order.  When the
    partition count does not exceed the rack count, whole racks map to
    shards (per-rack sub-kernels, the primary grouping the network
    lookahead argument is built around); otherwise shards are split
    among racks in proportion to rack order and hosts round-robin
    within their rack's shard block.  Any deterministic map is
    *correct* (cross-host causality only flows through the network);
    this one just minimizes cut edges.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    rack_order: List[str] = []
    rack_hosts: Dict[str, List[str]] = {}
    for name, rack in hosts:
        if rack not in rack_hosts:
            rack_order.append(rack)
            rack_hosts[rack] = []
        rack_hosts[rack].append(name)
    mapping: Dict[str, int] = {}
    n_racks = len(rack_order)
    if n_racks == 0:
        return mapping
    if n_shards <= n_racks:
        for i, rack in enumerate(rack_order):
            shard = i % n_shards
            for name in rack_hosts[rack]:
                mapping[name] = shard
        return mapping
    # More shards than racks: rack i owns the contiguous shard block
    # [floor(i*K/R), floor((i+1)*K/R)); its hosts round-robin inside.
    for i, rack in enumerate(rack_order):
        lo = (i * n_shards) // n_racks
        hi = ((i + 1) * n_shards) // n_racks
        width = max(1, hi - lo)
        for j, name in enumerate(rack_hosts[rack]):
            mapping[name] = lo + (j % width)
    return mapping


# ----------------------------------------------------------------------
# channels: every cross-machine flow, cut-aware
# ----------------------------------------------------------------------
class _ThroughChannel:
    """A flow whose endpoints share a sub-kernel: plain path.send."""

    __slots__ = ("cid", "path", "deliver", "extra", "size_of")

    def __init__(self, cid, path, deliver, extra, size_of):
        self.cid = cid
        self.path = path
        self.deliver = deliver
        self.extra = extra
        self.size_of = size_of

    def send(self, payload) -> None:
        self.path.send(self.size_of(payload), self.deliver, payload, *self.extra)


class _CutChannel:
    """A flow crossing partitions: source-side export, barrier import."""

    __slots__ = (
        "cid",
        "src_kernel",
        "downlink",
        "uplink",
        "spine_port",
        "deliver",
        "extra",
        "size_of",
        "src_shard",
        "dst_shard",
    )

    def __init__(
        self, cid, path, deliver, extra, size_of, src_kernel, src_shard, dst_shard
    ):
        self.cid = cid
        self.uplink = path.uplink
        self.downlink = path.downlink
        self.spine_port = path.spine
        self.deliver = deliver
        self.extra = extra
        self.size_of = size_of
        self.src_kernel = src_kernel
        self.src_shard = src_shard
        self.dst_shard = dst_shard

    def send(self, payload) -> None:
        if self.spine_port is None:
            # Same-rack cut: occupy the uplink now, no local event —
            # export the delivery-at-downlink time (>= now + link
            # propagation, the lookahead bound for this edge).
            t = self.uplink.transmit(self.size_of(payload))
            self.src_kernel.outbox.append((t, self.cid, payload))
        else:
            # Cross-rack cut: the traverse stays a *local* event (as in
            # serial), so the spine delay is drawn from the source
            # host's stream in local uplink-FIFO order.
            self.uplink.send(self.size_of(payload), self._traverse, payload)

    def _traverse(self, payload) -> None:
        t = self.src_kernel.now + self.spine_port.delay_us()
        self.src_kernel.outbox.append((t, self.cid, payload))

    def deliver_import(self, payload) -> None:
        """Runs in the destination kernel at the exported timestamp."""
        self.downlink.send(self.size_of(payload), self.deliver, payload, *self.extra)


class PartitionedSimulator:
    """K sub-kernels, a host→shard map, and the cut-aware channels.

    One instance represents one sharded simulation.  Benches build
    against it exactly as they build against a single
    :class:`Simulator` — hosts land on their owning kernels via
    :meth:`sim_for_host`, flows become channels via :meth:`channel` —
    and :func:`run_windows` advances all kernels in conservative
    windows.  ``n_shards=1`` degenerates to a windowed serial run and
    is part of the bit-identical test matrix.
    """

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards
        self.kernels = [SubKernel(i) for i in range(n_shards)]
        self.shard_map: Dict[str, int] = {}
        self.channels: List[object] = []
        self._import_fns: Dict[int, Callable[[object], None]] = {}
        #: ``cid -> (src_shard, dst_shard)`` — the coordinator's routing
        #: table, also the cross-process wiring-divergence check.
        self.routes: Dict[int, Tuple[int, int]] = {}
        self.lookahead_us: Optional[float] = None

    # -- construction --------------------------------------------------
    def assign(self, mapping: Dict[str, int]) -> None:
        for host, shard in mapping.items():
            if not 0 <= shard < self.n_shards:
                raise ValueError(f"host {host!r} assigned to bad shard {shard}")
        self.shard_map.update(mapping)

    def shard_of(self, host: str) -> int:
        return self.shard_map[host]

    def sim_for_host(self, host: str) -> Simulator:
        """Topology hook: each host's links live on its owning kernel."""
        return self.kernels[self.shard_map[host]]

    def set_lookahead(self, lookahead_us: float) -> None:
        """Validate and pin the window lookahead (must be positive)."""
        if lookahead_us <= 0.0:
            raise SimulationError(
                "partitioned execution requires positive network lookahead; "
                f"topology offers {lookahead_us!r}us (zero-propagation links "
                "leave no conservative window)"
            )
        self.lookahead_us = lookahead_us

    def channel(
        self,
        path,
        deliver: Callable[..., None],
        *extra: object,
        src: str,
        dst: str,
        size_attr: str,
    ) -> Callable[[object], None]:
        """Wrap one directed flow ``src -> dst``; returns its send callable.

        ``deliver(payload, *extra)`` fires on the destination host after
        its downlink, exactly like the serial continuation.  Channel ids
        are assigned in creation order, which is a pure function of the
        spec — every process derives the identical wiring, and the
        multi-process coordinator cross-checks that.
        """
        cid = len(self.channels)
        src_shard = self.shard_map[src]
        dst_shard = self.shard_map[dst]
        size_of = attrgetter(size_attr)
        if src_shard == dst_shard:
            ch: object = _ThroughChannel(cid, path, deliver, extra, size_of)
        else:
            ch = _CutChannel(
                cid,
                path,
                deliver,
                extra,
                size_of,
                self.kernels[src_shard],
                src_shard,
                dst_shard,
            )
            self._import_fns[cid] = ch.deliver_import
        self.channels.append(ch)
        self.routes[cid] = (src_shard, dst_shard)
        return ch.send

    def import_fn(self, cid: int) -> Callable[[object], None]:
        return self._import_fns[cid]

    def completion_recorder(self, shard: int) -> Callable[[object], None]:
        """An ``instance.on_done`` callback logging into ``shard``'s kernel."""
        kernel = self.kernels[shard]

        def _note(inst) -> None:
            kernel.completions.append((kernel.now, inst.name))

        return _note

    # -- introspection -------------------------------------------------
    @property
    def events_processed(self) -> int:
        return sum(k.events_processed for k in self.kernels)

    def sync_clocks(self, now: float) -> None:
        for kernel in self.kernels:
            kernel.sync_now(now)


@dataclass
class PartitionedBuild:
    """One sharded bench, fully wired and started, ready to drive.

    Produced by a backend builder (``build_single_partitioned`` /
    ``build_scenario_partitioned``) — in every process identically, so
    the multi-process mode can rebuild the same simulation per worker
    and execute only its own shard.
    """

    partition: PartitionedSimulator
    #: The bench object (kept alive: it owns machines and topology).
    bench: object
    #: Measurement instances in global (spec) order.
    instances: List[object]
    #: ``(shard, AntagonistProcess)`` in global deterministic order.
    antagonists: List[Tuple[int, object]]
    instance_shards: Dict[str, int]
    #: ``(shard, name, ServerMachine)`` for every server.
    servers: List[Tuple[int, str, object]]
    lookahead: float


# ----------------------------------------------------------------------
# the window-barrier loop
# ----------------------------------------------------------------------
@dataclass
class CoordinatorStats:
    """What one partitioned run did (bench + chaos evidence)."""

    windows: int = 0
    boundary_events: int = 0
    executed: int = 0
    global_now: float = 0.0
    completions: List[Tuple[float, str]] = field(default_factory=list)
    t_done: Optional[float] = None


class LocalShardHandle:
    """Drives one in-process sub-kernel through the window protocol.

    Also the worker-side engine of the multi-process mode: a remote
    worker wraps one of these and replays coordinator frames into it.
    """

    def __init__(self, partition: PartitionedSimulator, shard: int, antagonists):
        self._part = partition
        self.kernel = partition.kernels[shard]
        self.shard = shard
        self._antagonists = antagonists
        self._next_time = 0.0
        self._barrier = 0.0

    # exchange: apply boundary imports + control events, report next time
    def begin_exchange(self, wseq: int, imports, controls) -> None:
        kernel = self.kernel
        at = kernel.at
        import_fn = self._part.import_fn
        for t, cid, payload in imports:
            at(t, import_fn(cid), payload)
        for t, idx in controls:
            at(t, self._antagonists[idx].stop)
        self._next_time = kernel.next_time()

    def end_exchange(self) -> float:
        return self._next_time

    # advance: run the window, harvest exports and completions
    def begin_advance(self, wseq: int, barrier: float) -> None:
        self._barrier = barrier

    def end_advance(self):
        kernel = self.kernel
        executed = kernel.run_window(self._barrier)
        exports = kernel.outbox
        completions = kernel.completions
        if exports:
            kernel.outbox = []
        if completions:
            kernel.completions = []
        return exports, completions, executed, kernel.now

    def finalize(self, global_now: float) -> None:
        self.kernel.sync_now(global_now)


def run_windows(
    handles,
    *,
    lookahead_us: float,
    n_instances: int,
    antagonist_shards: Sequence[int],
    routes: Dict[int, Tuple[int, int]],
) -> CoordinatorStats:
    """Advance all shards to quiescence through conservative windows.

    One loop for both execution modes: per window, (1) every shard
    applies the previous window's boundary imports (in ``(time, source
    partition, sequence)`` order) plus any control events and reports
    its earliest pending event; (2) the coordinator takes the global
    minimum ``gmin`` and broadcasts the barrier ``gmin + L``; (3) every
    shard runs strictly below the barrier and returns its exports and
    instance completions.  When the final instance completes at
    ``T_done``, one stop control per antagonist is issued at ``T_done +
    L`` — at or beyond the next barrier by construction, and the same
    rule the serial bench applies inline, so both modes shut background
    load down at the identical virtual instant.

    Raises :class:`SimulationError` if the heaps drain before every
    instance completed (wiring bug or lost boundary frame — the clean
    arm of the chaos invariant).
    """
    stats = CoordinatorStats()
    n_shards = len(handles)
    pending_imports: List[List[Tuple[float, int, object]]] = [
        [] for _ in range(n_shards)
    ]
    pending_controls: List[List[Tuple[float, int]]] = [[] for _ in range(n_shards)]
    controls_issued = not antagonist_shards
    nows = [0.0] * n_shards
    wseq = 0
    while True:
        wseq += 1
        for shard, handle in enumerate(handles):
            handle.begin_exchange(
                wseq, pending_imports[shard], pending_controls[shard]
            )
        next_times = [h.end_exchange() for h in handles]
        pending_imports = [[] for _ in range(n_shards)]
        pending_controls = [[] for _ in range(n_shards)]
        gmin = min(next_times)
        if gmin == float("inf"):
            break
        barrier = gmin + lookahead_us
        for handle in handles:
            handle.begin_advance(wseq, barrier)
        exported: List[Tuple[float, int, int, int, object]] = []
        for shard, handle in enumerate(handles):
            exports, completions, executed, now = handle.end_advance()
            stats.executed += executed
            nows[shard] = now
            for seq, (t, cid, payload) in enumerate(exports):
                exported.append((t, shard, seq, cid, payload))
            stats.completions.extend(completions)
        stats.windows += 1
        if exported:
            # The deterministic total order of boundary events:
            # timestamp, then (partition, sequence) as the stable tiebreak.
            exported.sort(key=lambda r: (r[0], r[1], r[2]))
            for t, _shard, _seq, cid, payload in exported:
                pending_imports[routes[cid][1]].append((t, cid, payload))
            stats.boundary_events += len(exported)
        if not controls_issued and len(stats.completions) >= n_instances:
            stats.t_done = max(t for t, _ in stats.completions)
            stop_at = stats.t_done + lookahead_us
            for idx, shard in enumerate(antagonist_shards):
                pending_controls[shard].append((stop_at, idx))
            controls_issued = True
    if len(stats.completions) < n_instances:
        raise SimulationError(
            f"partitioned run drained after {stats.windows} windows with "
            f"{len(stats.completions)}/{n_instances} instances complete "
            "(lost boundary event or wiring bug)"
        )
    if stats.t_done is None:
        stats.t_done = max(t for t, _ in stats.completions)
    stats.global_now = max(nows)
    for handle in handles:
        handle.finalize(stats.global_now)
    return stats


def drive_partitioned(build) -> CoordinatorStats:
    """Drive one in-process partitioned build to quiescence.

    ``build`` is a :class:`PartitionedBuild`-shaped object (see the
    backend builders): a :class:`PartitionedSimulator`, the instances,
    and the antagonist list.  Returns the coordinator stats; the
    caller assembles results from the (clock-synced) local state.
    """
    part = build.partition
    part.set_lookahead(build.lookahead)
    handles = [
        LocalShardHandle(part, shard, [a for _, a in build.antagonists])
        for shard in range(part.n_shards)
    ]
    return run_windows(
        handles,
        lookahead_us=build.lookahead,
        n_instances=len(build.instances),
        antagonist_shards=[shard for shard, _ in build.antagonists],
        routes=part.routes,
    )


def collect_partial(build, shard: int) -> Dict[str, object]:
    """One shard's contribution to the merged result (post clock-sync).

    The multi-process worker ships this dict to the coordinator; the
    in-process mode collects the same dicts locally — one merge path,
    both modes.
    """
    reports = {}
    client_utils = {}
    for inst in build.instances:
        if build.instance_shards[inst.name] == shard:
            reports[inst.name] = inst.report()
            client_utils[inst.name] = inst.client.utilization()
    server_utils = {
        name: server.measured_utilization()
        for srv_shard, name, server in build.servers
        if srv_shard == shard
    }
    return {
        "shard": shard,
        "reports": reports,
        "client_utils": client_utils,
        "server_utils": server_utils,
        "events": build.partition.kernels[shard].events_processed,
    }
