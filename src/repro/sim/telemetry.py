"""Periodic machine telemetry for diagnosing simulated runs.

The paper's attribution pipeline treats the server as a black box; the
simulator does not have to.  :class:`MachineTelemetry` samples per-core
state on a fixed virtual-time period — busy fraction since the last
sample, instantaneous queue depth, effective frequency, and per-socket
thermal headroom — producing the timeline a performance engineer would
pull from ``perf``/``turbostat`` on the real machine.

Used by tests to verify mechanism-level behaviour (e.g. that
``same-node`` NIC affinity concentrates IRQ load on socket-0 cores, or
that thermal headroom dips under sustained load) and available to
users for debugging their own experiment configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from .engine import Simulator
from .machine import ServerMachine

__all__ = ["CoreSample", "MachineTelemetry"]


@dataclass
class CoreSample:
    """One core's state over one sampling period."""

    time_us: float
    core_index: int
    socket_index: int
    busy_fraction: float
    queue_depth: int
    effective_freq_ghz: float
    irq_us_delta: float


class MachineTelemetry:
    """Samples a :class:`~repro.sim.machine.ServerMachine` periodically.

    Start with :meth:`start`; samples accumulate until :meth:`stop`.
    All series are exposed as numpy arrays via :meth:`core_series` /
    :meth:`headroom_series`.

    .. note:: the sampler keeps rescheduling itself, so a simulation
       driven by "run until the event heap drains" will never drain
       while telemetry is running — call :meth:`stop` before any final
       drain (e.g. before ``TestBench.run_to_completion``'s trailing
       ``sim.run()``).
    """

    def __init__(self, server: ServerMachine, period_us: float = 500.0):
        if period_us <= 0:
            raise ValueError("period_us must be positive")
        self.server = server
        self.sim: Simulator = server.sim
        self.period_us = period_us
        self.samples: List[CoreSample] = []
        #: (time, socket_index, headroom) triples.
        self.headroom: List[tuple] = []
        self._last_busy: Dict[int, float] = {}
        self._last_irq: Dict[int, float] = {}
        self._event = None
        self._running = False

    def start(self) -> None:
        if self._running:
            raise RuntimeError("telemetry already started")
        self._running = True
        for core in self.server.cpu.cores:
            self._last_busy[core.index] = core.busy_us
            self._last_irq[core.index] = core.irq_us
        self._event = self.sim.schedule(self.period_us, self._tick)

    def stop(self) -> None:
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        for core in self.server.cpu.cores:
            busy_delta = core.busy_us - self._last_busy[core.index]
            irq_delta = core.irq_us - self._last_irq[core.index]
            self._last_busy[core.index] = core.busy_us
            self._last_irq[core.index] = core.irq_us
            self.samples.append(
                CoreSample(
                    time_us=now,
                    core_index=core.index,
                    socket_index=core.socket.index,
                    busy_fraction=min(1.0, busy_delta / self.period_us),
                    queue_depth=core.queue_depth,
                    effective_freq_ghz=core.effective_freq_ghz(now),
                    irq_us_delta=irq_delta,
                )
            )
        for socket in self.server.cpu.sockets:
            self.headroom.append((now, socket.index, socket.thermal_headroom(now)))
        self._event = self.sim.schedule(self.period_us, self._tick)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def core_series(self, core_index: int, fld: str = "busy_fraction") -> np.ndarray:
        """Time series of one field for one core."""
        values = [
            getattr(s, fld) for s in self.samples if s.core_index == core_index
        ]
        return np.asarray(values, dtype=float)

    def mean_busy_by_core(self) -> Dict[int, float]:
        """Average busy fraction per core over the whole capture."""
        out: Dict[int, List[float]] = {}
        for s in self.samples:
            out.setdefault(s.core_index, []).append(s.busy_fraction)
        return {idx: float(np.mean(vals)) for idx, vals in out.items()}

    def irq_share_by_socket(self) -> Dict[int, float]:
        """Fraction of observed IRQ time handled on each socket."""
        totals: Dict[int, float] = {}
        for s in self.samples:
            totals[s.socket_index] = totals.get(s.socket_index, 0.0) + s.irq_us_delta
        grand = sum(totals.values())
        if grand <= 0:
            return {k: 0.0 for k in totals}
        return {k: v / grand for k, v in totals.items()}

    def headroom_series(self, socket_index: int) -> np.ndarray:
        return np.asarray(
            [h for t, s, h in self.headroom if s == socket_index], dtype=float
        )
