"""A load-dependent backend pool for proxy workloads.

The default :class:`~repro.workloads.mcrouter.McrouterWorkload` samples
its backend round-trip from a fixed distribution — fine for the paper's
single-box attribution study, where the backend pool is large and
lightly loaded.  For experiments where the backends themselves carry
meaningful load, :class:`BackendPool` replaces that fixed distribution
with a simulated pool of FIFO cache servers: each routed request picks
a backend, queues behind that backend's in-flight work, and pays an
exponential service time plus the pool round-trip.  Backend waits then
*grow with offered load*, as they do in a real mcrouter deployment.

Usage::

    pool = BackendPool(bench.sim, BackendPoolConfig(servers=8),
                       bench.rng.stream("backends"))
    workload = McrouterWorkload(backend_pool=pool)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .engine import Simulator

__all__ = ["BackendPoolConfig", "BackendPool"]


@dataclass
class BackendPoolConfig:
    """Sizing of the simulated cache pool behind the router."""

    servers: int = 8
    #: Mean exponential service time of one backend request.
    service_mean_us: float = 6.0
    #: Fixed network round-trip between router and pool.
    rtt_us: float = 10.0

    def __post_init__(self) -> None:
        if self.servers < 1:
            raise ValueError("servers must be >= 1")
        if self.service_mean_us <= 0:
            raise ValueError("service_mean_us must be positive")
        if self.rtt_us < 0:
            raise ValueError("rtt_us must be non-negative")


class BackendPool:
    """FIFO backend servers with load-dependent waiting.

    Each backend is modelled as a single FIFO server (the same
    transmitter-free-at technique the network links use), so the wait
    returned by :meth:`sample_wait_us` includes real queueing behind
    previously routed requests.
    """

    def __init__(
        self,
        sim: Simulator,
        config: BackendPoolConfig,
        rng: np.random.Generator,
    ):
        self.sim = sim
        self.config = config
        self._rng = rng
        self._free_at: List[float] = [0.0] * config.servers
        self.requests_routed = 0
        self.total_queue_us = 0.0

    def sample_wait_us(self) -> float:
        """Route one request: returns rtt + queueing + service time.

        The chosen backend's transmitter is advanced, so concurrent
        requests to the same backend queue behind each other.
        """
        now = self.sim.now
        backend = int(self._rng.integers(0, self.config.servers))
        start = max(now, self._free_at[backend])
        queue_us = start - now
        service_us = float(self._rng.exponential(self.config.service_mean_us))
        self._free_at[backend] = start + service_us
        self.requests_routed += 1
        self.total_queue_us += queue_us
        return self.config.rtt_us + queue_us + service_us

    def mean_queue_us(self) -> float:
        """Average queueing delay across all routed requests so far."""
        if self.requests_routed == 0:
            return 0.0
        return self.total_queue_us / self.requests_routed

    def utilization(self) -> float:
        """Approximate pool utilization: busy time over elapsed time."""
        if self.sim.now <= 0:
            return 0.0
        busy = sum(min(f, self.sim.now) for f in self._free_at)
        return min(1.0, busy / (self.sim.now * self.config.servers))
