"""Compile a declarative scenario into executable RunSpecs.

``compile_scenario(spec) -> list[RunSpec]`` expands the scenario's
two-level factor matrix into a full factorial, crosses it with the
replication count, and emits one frozen
:class:`~repro.exec.spec.RunSpec` per (configuration, replication).
The emitted specs flow through the existing execution layer —
executors, result cache, fault injection — completely unchanged: a
scenario is just a different way of *describing* independent
experiments, not a new way of running them.

**Degenerate lowering (the bit-identity guarantee).**  A scenario with
one fleet, one single-server pool, and none of the multi-pool
machinery (antagonists, start delays, custom arrivals, spine/link
overrides, cross-rack placement) describes exactly what a plain
``RunSpec`` already describes.  The compiler detects this and lowers
it to a plain ``RunSpec`` with ``scenario=None`` — same digest, same
cache key, bit-identical result as direct configuration.  The
multi-pool runtime never touches the legacy path; the guarantee holds
by construction and is pinned by the golden-digest test.

Replications use **common random numbers**: replication ``r`` of every
factor configuration shares ``run_index=r``, so paired comparisons
across configurations difference out run-to-run noise (the same
variance-reduction the attribution sweep relies on).
"""

from __future__ import annotations

import itertools
from typing import List, Sequence, Tuple

from ..core.config import hardware_from_json, workload_from_json
from ..exec.spec import RunSpec
from ..sim.machine import HardwareSpec
from .config import scenario_from_json, scenario_to_jsonable
from .schema import ScenarioFactor, ScenarioSpec

__all__ = [
    "apply_factor_levels",
    "is_degenerate",
    "lower_degenerate",
    "expand_scenario",
    "compile_scenario",
]


def _apply_factor(doc: dict, factor: ScenarioFactor, value: object) -> None:
    """Substitute one factor level into the scenario's JSON form."""
    parts = factor.path.split(".")
    section = parts[0]
    if section in ("pools", "fleets", "antagonists"):
        name = parts[1]
        for item in doc.get(section) or []:
            if item.get("name") == name:
                target = item
                break
        else:
            raise ValueError(
                f"factor {factor.name!r}: no {section} element named {name!r}"
            )
        rest = parts[2:]
    else:  # "spine" — the schema admits nothing else
        if doc.get("spine") is None:
            doc["spine"] = {}
        target = doc["spine"]
        rest = parts[1:]
    for key in rest[:-1]:
        nxt = target.get(key)
        if not isinstance(nxt, dict):
            nxt = {}
            target[key] = nxt
        target = nxt
    target[rest[-1]] = value


def apply_factor_levels(
    spec: ScenarioSpec, coded: Sequence[int]
) -> ScenarioSpec:
    """The scenario variant at one coded factor configuration.

    Levels substitute into the JSON document form and the result is
    re-validated by the loader, so a factor can only ever produce
    scenarios the schema accepts.  The variant carries no factors of
    its own (they are resolved) and inherits everything else.
    """
    if len(coded) != len(spec.factors):
        raise ValueError(
            f"expected {len(spec.factors)} coded levels, got {len(coded)}"
        )
    doc = scenario_to_jsonable(spec)
    doc.pop("factors", None)
    for factor, level in zip(spec.factors, coded):
        if level not in (0, 1):
            raise ValueError("coded levels must be 0 or 1")
        _apply_factor(doc, factor, factor.high if level else factor.low)
    return scenario_from_json(doc)


def is_degenerate(spec: ScenarioSpec) -> bool:
    """True when the scenario is expressible as a plain RunSpec.

    Every condition mirrors a default of the legacy single-server
    path; any deviation keeps the scenario on the multi-pool runtime.
    """
    if len(spec.pools) != 1 or len(spec.fleets) != 1:
        return False
    pool, fleet = spec.pools[0], spec.fleets[0]
    return (
        pool.count == 1
        and pool.link is None
        and not spec.antagonists
        and not spec.factors
        and spec.spine is None
        and fleet.arrival is None
        and fleet.start_us == 0.0
        and fleet.rack in (None, pool.rack)
    )


def lower_degenerate(
    spec: ScenarioSpec, run_index: int = 0, tag: str = ""
) -> RunSpec:
    """Lower a degenerate scenario to the plain RunSpec it denotes."""
    if not is_degenerate(spec):
        raise ValueError(f"scenario {spec.name!r} is not degenerate")
    pool, fleet = spec.pools[0], spec.fleets[0]
    hardware = (
        hardware_from_json(dict(pool.hardware))
        if pool.hardware is not None
        else HardwareSpec()
    )
    return RunSpec(
        workload=workload_from_json(dict(pool.workload)),
        hardware=hardware,
        total_rate_rps=fleet.rate_rps,
        target_utilization=fleet.target_utilization,
        num_instances=fleet.instances,
        connections_per_instance=fleet.connections_per_instance,
        warmup_samples=fleet.warmup_samples,
        measurement_samples_per_instance=fleet.measurement_samples_per_instance,
        quantiles=spec.quantiles,
        combine=spec.combine,
        keep_raw=spec.keep_raw,
        seed=spec.seed,
        run_index=run_index,
        tag=tag,
    )


def auto_partitions(spec: ScenarioSpec) -> "int | None":
    """Partition count implied by the rack topology: one sub-kernel
    per distinct rack when the scenario spans several racks, else None
    (serial).  The rack split is exactly the grouping whose minimum
    cross-partition propagation delay the network exposes as the
    conservative lookahead, so it is the natural sharding."""
    racks = {pool.rack for pool in spec.pools}
    for fleet in spec.fleets:
        if fleet.rack is not None:
            racks.add(fleet.rack)
        else:
            racks.add(spec.pool(fleet.target).rack)
    return len(racks) if len(racks) > 1 else None


def expand_scenario(
    spec: ScenarioSpec,
) -> List[Tuple[Tuple[int, ...], int, RunSpec]]:
    """The full (coded configuration, run_index, RunSpec) expansion.

    One entry per factor configuration per replication, in factorial
    order — ``compile_scenario`` strips the labels, the scenario
    attribution study keeps them.
    """
    out: List[Tuple[Tuple[int, ...], int, RunSpec]] = []
    level_sets = [(0, 1)] * len(spec.factors)
    for coded in itertools.product(*level_sets):
        variant = apply_factor_levels(spec, coded) if spec.factors else spec
        for r in range(spec.replications):
            cfg_label = f" cfg={coded}" if spec.factors else ""
            tag = f"{spec.name}{cfg_label} rep={r}"
            if is_degenerate(variant):
                run = lower_degenerate(variant, run_index=r, tag=tag)
            else:
                run = RunSpec(
                    workload=workload_from_json(dict(variant.pools[0].workload)),
                    num_instances=sum(f.instances for f in variant.fleets),
                    quantiles=variant.quantiles,
                    combine=variant.combine,
                    keep_raw=variant.keep_raw,
                    seed=variant.seed,
                    run_index=r,
                    tag=tag,
                    scenario=variant,
                    # Auto-partition from the rack topology: one
                    # sub-kernel per rack when the scenario spans
                    # several (partitions is digest-excluded — results
                    # are pinned bit-identical to serial — so this is
                    # an execution-strategy default, not a semantic
                    # change).
                    partitions=auto_partitions(variant),
                )
            out.append((coded, r, run))
    return out


def compile_scenario(spec: ScenarioSpec) -> List[RunSpec]:
    """Compile to plain RunSpecs (factor matrix x replications)."""
    return [run for _, _, run in expand_scenario(spec)]
