"""The multi-pool scenario bench: N client fleets x M server pools.

:class:`ScenarioBench` is the scenario-shaped sibling of
:class:`~repro.core.bench.TestBench`: one virtual-time simulator
holding every pool's servers (each booted fresh with its own hidden
placement state), the rack topology with cross-rack spine, optional
colocated antagonists, and all fleet clients — with per-*connection*
routing, because a fleet's connections round-robin across its pool's
servers.

Treadmill instances are reused completely unchanged: they drive an
abstract bench protocol (``sim`` / ``rng`` / ``config.workload`` /
``add_client`` / ``open_connections``), which :meth:`fleet_view`
satisfies per fleet.  A view pins the fleet's rack and target pool and
shares the parent's simulator, RNG registry, and global connection
counter, so host wiring order — and therefore every RNG stream — is a
pure function of the scenario.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.bench import drive_until
from ..core.config import hardware_from_json, workload_from_json
from ..sim.engine import Simulator
from ..sim.machine import (
    AntagonistConfig,
    AntagonistProcess,
    ClientMachine,
    ClientSpec,
    HardwareSpec,
    ServerMachine,
)
from ..sim.network import LinkConfig, SpineConfig, Topology
from ..sim.rng import RngRegistry
from ..sim.tcpdump import PacketCapture
from ..workloads.base import Request
from .config import link_from_json, spine_from_json
from .schema import ClientFleetSpec, ScenarioSpec

__all__ = ["ScenarioBench"]


class _FleetConfig:
    """The minimal ``bench.config`` surface TreadmillInstance reads."""

    __slots__ = ("workload",)

    def __init__(self, workload):
        self.workload = workload


class _FleetView:
    """One fleet's bench-protocol adapter (duck-typed TestBench)."""

    def __init__(
        self,
        parent: "ScenarioBench",
        fleet: ClientFleetSpec,
        servers: List[ServerMachine],
        rack: str,
    ):
        self._parent = parent
        self._fleet = fleet
        self._servers = servers
        self._rack = rack
        self._current_client: Optional[ClientMachine] = None
        # Round-robin cursor across the pool's servers; per fleet, so
        # every fleet spreads its connections evenly regardless of how
        # other fleets share the pool.
        self._rr = 0
        self.sim = parent.sim
        self.rng = parent.rng
        self.config = _FleetConfig(parent.pool_workloads[fleet.target])

    # -- TestBench protocol -------------------------------------------
    def add_client(
        self,
        name: str,
        rack: Optional[str] = None,
        client_spec: Optional[ClientSpec] = None,
        link_config: Optional[LinkConfig] = None,
        capture: bool = True,
    ) -> ClientMachine:
        parent = self._parent
        if name in parent.clients:
            raise ValueError(f"duplicate client {name!r}")
        rack = rack if rack is not None else self._rack
        parent.topology.add_host(name, rack, link_config=link_config)
        cap = PacketCapture(name) if capture else None
        routes = parent._routes

        if parent._partition is None:

            def send_packet(request: Request) -> None:
                fwd, receive, respond = routes[request.conn_id]
                fwd.send(request.request_bytes, receive, request, respond)

        else:
            # Partitioned: each route entry is the connection's
            # cut-aware forward channel (see open_connections).
            def send_packet(request: Request) -> None:
                routes[request.conn_id](request)

        client = ClientMachine(
            parent._sim_for(name),
            client_spec or ClientSpec(),
            name,
            send_packet=send_packet,
            capture=cap,
        )
        parent.clients[name] = client
        if cap is not None:
            parent.captures[name] = cap
        self._current_client = client
        return client

    def open_connections(self, count: int) -> List[int]:
        """Accept ``count`` connections, round-robin across the pool.

        Connection ids are global across the whole scenario (matching
        the TestBench counter semantics); each id is routed to one
        server of the fleet's target pool at accept time and the
        forward/reverse network paths are resolved once, here, not per
        packet.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        parent = self._parent
        client = self._current_client
        if client is None:
            raise RuntimeError("open_connections before add_client")
        ids = []
        partition = parent._partition
        for _ in range(count):
            conn_id = parent._conn_counter
            parent._conn_counter += 1
            server = self._servers[self._rr % len(self._servers)]
            self._rr += 1
            server.accept(conn_id)
            fwd = parent.topology.path(client.name, server.name)
            rev = parent.topology.path(server.name, client.name)
            deliver = client.deliver

            if partition is None:

                def respond(request: Request, _rev=rev, _deliver=deliver) -> None:
                    _rev.send(request.response_bytes, _deliver, request)

                parent._routes[conn_id] = (fwd, server.receive, respond)
            else:
                # Same flows as the serial closures, cut-aware; the
                # reverse path first (it is the forward continuation),
                # so channel ids are a pure function of the scenario.
                respond = partition.channel(
                    rev, deliver, src=server.name, dst=client.name,
                    size_attr="response_bytes",
                )
                parent._routes[conn_id] = partition.channel(
                    fwd, server.receive, respond,
                    src=client.name, dst=server.name,
                    size_attr="request_bytes",
                )
            ids.append(conn_id)
        return ids


class ScenarioBench:
    """One wired scenario run (pools + topology + antagonists)."""

    def __init__(self, scenario: ScenarioSpec, run_index: int = 0, partition=None):
        self.scenario = scenario
        self.run_index = run_index
        #: Optional :class:`~repro.sim.partition.PartitionedSimulator`
        #: (every scenario host pre-assigned to a shard).  When set,
        #: machines and links land on their owning sub-kernels and
        #: per-connection routes become cut-aware channels.
        self._partition = partition
        if partition is None:
            self.sim = Simulator()
        else:
            # Nominal base kernel; every host resolves its own via
            # sim_for_host below.
            self.sim = partition.kernels[0]
        # Same per-run seed derivation as TestBench: equal (seed,
        # run_index) means the same random universe either way.
        self.rng = RngRegistry(hash((scenario.seed, run_index)) & 0x7FFFFFFF)
        spine_cfg = (
            spine_from_json(dict(scenario.spine))
            if scenario.spine is not None
            else SpineConfig()
        )
        # Per-source-host spine streams: the draw order is local to
        # each host's uplink FIFO, so sharded execution replays the
        # identical delays (see repro.sim.partition).
        self.topology = Topology(
            self.sim,
            spine_config=spine_cfg,
            spine_streams=lambda host: self.rng.stream(f"spine/{host}"),
            sim_for_host=None if partition is None else partition.sim_for_host,
        )
        #: pool name -> that pool's booted servers, in index order.
        self.pools: Dict[str, List[ServerMachine]] = {}
        #: pool name -> the pool's (shared) workload model instance.
        self.pool_workloads: Dict[str, object] = {}
        for pool in scenario.pools:
            workload = workload_from_json(dict(pool.workload))
            hardware = (
                hardware_from_json(dict(pool.hardware))
                if pool.hardware is not None
                else HardwareSpec()
            )
            link = (
                link_from_json(dict(pool.link)) if pool.link is not None else None
            )
            servers = []
            for i in range(pool.count):
                server_name = f"{pool.name}{i}"
                self.topology.add_host(server_name, pool.rack, link_config=link)
                server = ServerMachine(
                    self._sim_for(server_name),
                    hardware,
                    workload,
                    self.rng.child(server_name),
                    name=server_name,
                )
                server.boot()
                servers.append(server)
            self.pools[pool.name] = servers
            self.pool_workloads[pool.name] = workload
        #: Antagonist processes, in scenario order then server order.
        self.antagonists: List[AntagonistProcess] = []
        for spec in scenario.antagonists:
            servers = self.pools[spec.pool]
            targets = servers if spec.server is None else [servers[spec.server]]
            for server in targets:
                cfg = AntagonistConfig(
                    rate_rps=spec.rate_rps,
                    work_us=spec.work_us,
                    fixed_us=spec.fixed_us,
                    socket=spec.socket,
                )
                self.antagonists.append(
                    AntagonistProcess(
                        server.sim,
                        server,
                        cfg,
                        self.rng.stream(f"antagonist/{spec.name}/{server.name}"),
                        name=f"{spec.name}@{server.name}",
                    )
                )
        self.clients: Dict[str, ClientMachine] = {}
        self.captures: Dict[str, PacketCapture] = {}
        self._conn_counter = 0
        self._routes: Dict[int, object] = {}
        # Deterministic antagonist shutdown: when the final instance
        # completes at T_done, every antagonist gets a stop event at
        # T_done + lookahead.  Same rule the partitioned coordinator
        # applies at its window barriers, so both modes silence
        # background load at the identical virtual instant.
        self._expected: Optional[int] = None
        self._completed = 0

    def _sim_for(self, host: str) -> Simulator:
        if self._partition is None:
            return self.sim
        return self._partition.sim_for_host(host)

    def _note_done(self, inst) -> None:
        self._completed += 1
        if self._completed >= (self._expected or 0) and self.antagonists:
            stop_at = self.sim.now + self.topology.lookahead_us()
            for proc in self.antagonists:
                proc.sim.at(stop_at, proc.stop)

    def fleet_view(self, fleet_name: str) -> _FleetView:
        """The bench adapter a fleet's Treadmill instances drive."""
        fleet = self.scenario.fleet(fleet_name)
        pool = self.scenario.pool(fleet.target)
        rack = fleet.rack if fleet.rack is not None else pool.rack
        return _FleetView(self, fleet, self.pools[fleet.target], rack)

    def fleet_total_rate(self, fleet_name: str) -> float:
        """The fleet's total offered load in requests per second."""
        fleet = self.scenario.fleet(fleet_name)
        if fleet.rate_rps is not None:
            return fleet.rate_rps
        servers = self.pools[fleet.target]
        # target_utilization is the per-server utilization this fleet's
        # load alone would induce; all servers of a pool are identical,
        # so one calibration call covers the pool.
        per_us = servers[0].arrival_rate_for_utilization(fleet.target_utilization)
        return per_us * 1e6 * len(servers)

    def start_antagonists(self) -> None:
        for proc in self.antagonists:
            proc.start()

    def stop_antagonists(self) -> None:
        for proc in self.antagonists:
            proc.stop()

    def run_until(self, predicate: Callable[[], bool], check_every: int = 256) -> None:
        drive_until(self.sim, predicate, check_every)

    def run_to_completion(self, instances) -> None:
        """Run until every instance is done, then drain in-flight work.

        Instances stop their own controllers at the final counted
        sample; completion callbacks wired here schedule one stop
        event per antagonist at ``T_done + lookahead`` (they reschedule
        themselves forever, so draining without a stop would never
        terminate).  Both the completion instant and the stop instant
        are properties of the event stream, never of the drive loop's
        polling cadence — the partitioned coordinator reproduces them
        exactly.
        """
        pending = list(instances)
        self._expected = len(pending)
        self._completed = 0
        for inst in pending:
            inst.on_done = self._note_done
        self.run_until(lambda: all(inst.done for inst in pending))
        for inst in pending:
            inst.stop()
        self.sim.run()
