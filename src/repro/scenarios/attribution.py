"""Per-(fleet, pool) attribution over a scenario's factor matrix.

The paper's Section IV/V machinery — randomized replicated factorial
sweep, per-experiment raw-latency subsample, quantile regression with
bootstrap inference — applied per grouping pair: every (fleet, pool)
group observes the *same* sweep (common random numbers), and each
group gets its own independent model fit over its own latencies.
That is what localizes a factor's effect to the pool it actually
hurts: a colocated antagonist on the cache pool shows up in the cache
groups' coefficients and stays near zero everywhere else.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.attribution import (
    AttributionReport,
    fit_grouped_experiments,
    subsample_latencies,
)
from ..exec.executors import _ExecutorBase, execute_specs
from ..exec.progress import ProgressHook
from ..exec.spec import RunResult, metric_samples
from ..stats.design import Factor
from ..stats.inference import ExperimentSample
from .compiler import expand_scenario
from .schema import ScenarioSpec

__all__ = ["ScenarioAttributionStudy", "group_experiment_samples"]

Group = Tuple[str, str]


def group_experiment_samples(
    run: RunResult, limit: int, seed: int, run_index: int
) -> Dict[Group, np.ndarray]:
    """One run's raw latencies partitioned by (fleet, pool).

    Each group is subsampled independently (same cap the legacy study
    applies to whole runs), keyed on the run's identity so a cached
    result always yields the same subsample.
    """
    parts: Dict[Group, List[np.ndarray]] = {}
    for report in run.reports:
        parts.setdefault(report.group, []).append(metric_samples(report))
    return {
        group: subsample_latencies(
            np.concatenate(arrays), limit, seed, run_index
        )
        for group, arrays in parts.items()
    }


class ScenarioAttributionStudy:
    """Runs a scenario's factor sweep and fits per-group models.

    The scenario's own ``factors`` / ``replications`` define the
    sweep; ``keep_raw`` is forced on (the fits need raw latencies).
    Specs are submitted to the execution layer as one batch, so
    executors parallelize and the result cache deduplicates exactly as
    they do for the legacy study.
    """

    def __init__(
        self,
        scenario: ScenarioSpec,
        taus: Sequence[float] = (0.5, 0.95, 0.99),
        samples_per_experiment: int = 20_000,
        n_boot: int = 120,
        perturb_sd: float = 0.01,
        executor: Optional[_ExecutorBase] = None,
    ):
        if not scenario.factors:
            raise ValueError(
                f"scenario {scenario.name!r} defines no factors to attribute"
            )
        self.scenario = dataclasses.replace(scenario, keep_raw=True)
        self.taus = tuple(taus)
        self.samples_per_experiment = samples_per_experiment
        self.n_boot = n_boot
        self.perturb_sd = perturb_sd
        self.executor = executor
        self.factors = [
            Factor(f.name, low=str(f.low), high=str(f.high))
            for f in scenario.factors
        ]

    def run_experiments(
        self, progress: Optional[ProgressHook] = None
    ) -> Dict[Group, List[ExperimentSample]]:
        """The sweep, grouped: one ExperimentSample per (group, run)."""
        expanded = expand_scenario(self.scenario)
        specs = [spec for _, _, spec in expanded]
        runs = execute_specs(specs, self.executor, progress=progress)
        by_group: Dict[Group, List[ExperimentSample]] = {}
        for (coded, run_index, _), run in zip(expanded, runs):
            grouped = group_experiment_samples(
                run,
                self.samples_per_experiment,
                self.scenario.seed,
                run_index,
            )
            for group, samples in grouped.items():
                by_group.setdefault(group, []).append(
                    ExperimentSample(coded=tuple(coded), samples=samples)
                )
        return by_group

    def analyze(
        self,
        experiments_by_group: Optional[Dict[Group, List[ExperimentSample]]] = None,
        progress: Optional[ProgressHook] = None,
    ) -> Dict[Group, AttributionReport]:
        """Fit the full-interaction model per (fleet, pool) group."""
        if experiments_by_group is None:
            experiments_by_group = self.run_experiments(progress=progress)
        return fit_grouped_experiments(
            experiments_by_group,
            self.factors,
            self.taus,
            n_boot=self.n_boot,
            perturb_sd=self.perturb_sd,
            seed=self.scenario.seed,
        )
