"""Execute one scenario-carrying RunSpec.

:func:`_execute_scenario_spec` is the scenario counterpart of the
simulator backend's single-server body
(:mod:`repro.measure.simbackend`): boot every pool, stand up every
fleet's Treadmill instances, start antagonists, drive the shared
simulator to completion, and report — overall metrics via the paper's
per-instance-then-combine rule plus per-(fleet, pool)
``group_metrics``.  It is a pure function of the spec, so the
serial-vs-parallel bit-identity guarantee of the execution layer
extends to scenarios unchanged.  The ``fleet=``/``pool=`` labels each
instance report carries double as the guard layer's grouping key: the
aggregation-imbalance detector (:mod:`repro.guards.detectors`) audits
per-client sample shares both pooled and per ``(fleet, pool)`` scope,
and the per-instance guard tape (``phase_windows``/``warmup_tail``)
recorded by the shared :class:`~repro.core.treadmill.PhaseRecorder`
gives the drift detectors the same evidence here as on plain specs.  The simulator measurement backend
calls it for every scenario-carrying spec; the public
:func:`run_scenario_spec` name is a deprecated alias for
:func:`repro.measure.measure_spec`.
"""

from __future__ import annotations

import gc
import time
import warnings
from typing import Dict, List

from ..core.aggregation import aggregate_quantile, grouped_quantiles
from ..core.arrival import arrival_from_spec
from ..core.treadmill import TreadmillConfig, TreadmillInstance
from .bench import ScenarioBench
from .schema import ScenarioSpec

__all__ = ["run_scenario_spec"]


def run_scenario_spec(spec) -> "RunResult":
    """Deprecated alias for :func:`repro.measure.measure_spec`.

    Kept so pre-PR-7 callers continue to work; dispatching through the
    measurement registry also honours ``spec.backend`` instead of
    silently assuming the simulator.
    """
    warnings.warn(
        "run_scenario_spec() is deprecated; use repro.run(spec) or "
        "repro.measure.measure_spec(spec) (see exec/API.md migration table)",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..measure.api import measure_spec

    return measure_spec(spec)


def _build_instances(spec, bench: ScenarioBench) -> List[TreadmillInstance]:
    """Stand up every fleet's Treadmill instances (construction order
    is a pure function of the scenario — all RNG streams ride on it)."""
    scenario: ScenarioSpec = spec.scenario
    instances: List[TreadmillInstance] = []
    for fleet in scenario.fleets:
        view = bench.fleet_view(fleet.name)
        rate_per_instance = bench.fleet_total_rate(fleet.name) / fleet.instances
        for i in range(fleet.instances):
            arrival = None
            if fleet.arrival is not None:
                arrival = arrival_from_spec(
                    {**dict(fleet.arrival), "rate_rps": rate_per_instance}
                )
            tm_cfg = TreadmillConfig(
                rate_rps=rate_per_instance,
                connections=fleet.connections_per_instance,
                warmup_samples=fleet.warmup_samples,
                measurement_samples=fleet.measurement_samples_per_instance,
                keep_raw=spec.keep_raw,
                arrival=arrival,
                start_us=fleet.start_us,
            )
            instances.append(
                TreadmillInstance(
                    view,
                    f"{fleet.name}{i}",
                    tm_cfg,
                    fleet=fleet.name,
                    pool=fleet.target,
                )
            )
    return instances


def _finish_scenario(
    spec, reports, *, server_utilization, client_utilizations,
    events_processed, wall_s,
) -> "RunResult":
    """Aggregation + RunResult assembly shared by the serial and
    partitioned scenario paths (one assembly, one byte layout)."""
    from ..exec.spec import RunResult, metric_samples

    samples_by_client = {r.name: metric_samples(r) for r in reports}
    metrics = {
        q: aggregate_quantile(samples_by_client, q, combine=spec.combine)
        for q in spec.quantiles
    }
    group_metrics = grouped_quantiles(
        samples_by_client,
        {r.name: r.group for r in reports},
        spec.quantiles,
        combine=spec.combine,
    )
    return RunResult(
        run_index=spec.run_index,
        reports=reports,
        metrics=metrics,
        # One scalar slot for many servers: report the bottleneck (the
        # hottest server), which is what capacity reasoning needs.
        server_utilization=server_utilization,
        client_utilizations=client_utilizations,
        spec_digest=spec.digest(),
        wall_s=wall_s,
        events_processed=events_processed,
        group_metrics=group_metrics,
    )


def _execute_scenario_spec(spec, partition_mode: str = "inproc") -> "RunResult":
    """Execute one scenario experiment described by ``spec.scenario``."""
    scenario: ScenarioSpec = spec.scenario
    if scenario is None:
        raise ValueError("run_scenario_spec needs a scenario-carrying spec")
    if spec.partitions is not None:
        return _execute_scenario_partitioned(spec, spec.partitions, partition_mode)
    t0 = time.perf_counter()
    bench = ScenarioBench(scenario, run_index=spec.run_index)
    instances = _build_instances(spec, bench)

    bench.start_antagonists()
    for inst in instances:
        inst.start()
    # Same GC discipline as the legacy path: the event loop allocates
    # no reference cycles, so mid-run cyclic-GC passes are pure cost.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        bench.run_to_completion(instances)
    finally:
        if gc_was_enabled:
            gc.enable()

    reports = [inst.report() for inst in instances]
    server_utils: Dict[str, float] = {}
    for servers in bench.pools.values():
        for server in servers:
            server_utils[server.name] = server.measured_utilization()
    return _finish_scenario(
        spec,
        reports,
        server_utilization=float(max(server_utils.values())),
        client_utilizations={
            name: client.utilization() for name, client in bench.clients.items()
        },
        events_processed=bench.sim.events_processed,
        wall_s=time.perf_counter() - t0,
    )


# ----------------------------------------------------------------------
# partitioned execution
# ----------------------------------------------------------------------
def scenario_hosts(scenario: ScenarioSpec) -> List[tuple]:
    """Every scenario host as ``(name, rack)`` in construction order
    (pool servers first, then fleet clients) — the input to
    :func:`repro.sim.partition.assign_shards`."""
    hosts = []
    for pool in scenario.pools:
        for i in range(pool.count):
            hosts.append((f"{pool.name}{i}", pool.rack))
    for fleet in scenario.fleets:
        rack = fleet.rack
        if rack is None:
            rack = scenario.pool(fleet.target).rack
        for i in range(fleet.instances):
            hosts.append((f"{fleet.name}{i}", rack))
    return hosts


def build_scenario_partitioned(spec, n_shards: int):
    """Build one scenario bench sharded across ``n_shards`` sub-kernels.

    Pure function of ``(spec, n_shards)``: every worker process
    rebuilds the identical simulation and executes only its shard.
    """
    from ..sim.partition import PartitionedBuild, PartitionedSimulator, assign_shards

    scenario: ScenarioSpec = spec.scenario
    partition = PartitionedSimulator(n_shards)
    partition.assign(assign_shards(scenario_hosts(scenario), n_shards))
    bench = ScenarioBench(scenario, run_index=spec.run_index, partition=partition)
    instances = _build_instances(spec, bench)
    instance_shards = {}
    for inst in instances:
        shard = inst.client.sim.shard_id
        instance_shards[inst.name] = shard
        inst.on_done = partition.completion_recorder(shard)
    bench.start_antagonists()
    for inst in instances:
        inst.start()
    servers = []
    for pool in scenario.pools:
        for server in bench.pools[pool.name]:
            servers.append((server.sim.shard_id, server.name, server))
    return PartitionedBuild(
        partition=partition,
        bench=bench,
        instances=instances,
        antagonists=[(proc.sim.shard_id, proc) for proc in bench.antagonists],
        instance_shards=instance_shards,
        servers=servers,
        lookahead=bench.topology.lookahead_us(),
    )


def merge_scenario_partials(spec, partials, wall_s: float) -> "RunResult":
    """Merge per-shard partials into the scenario RunResult (the one
    merge path shared by the in-process and multi-process modes)."""
    scenario: ScenarioSpec = spec.scenario
    reports_by: Dict[str, object] = {}
    client_utils_by: Dict[str, float] = {}
    server_utils_by: Dict[str, float] = {}
    events = 0
    for partial in partials:
        reports_by.update(partial["reports"])
        client_utils_by.update(partial["client_utils"])
        server_utils_by.update(partial["server_utils"])
        events += partial["events"]
    names = [
        f"{fleet.name}{i}"
        for fleet in scenario.fleets
        for i in range(fleet.instances)
    ]
    reports = [reports_by[name] for name in names]
    return _finish_scenario(
        spec,
        reports,
        server_utilization=float(max(server_utils_by.values())),
        client_utilizations={r.name: client_utils_by[r.name] for r in reports},
        events_processed=events,
        wall_s=wall_s,
    )


def _execute_scenario_partitioned(spec, n_shards: int, mode: str) -> "RunResult":
    from ..sim.partition import collect_partial, drive_partitioned

    if mode == "process":
        from ..measure.partitionproc import run_partitioned_process

        return run_partitioned_process(
            spec,
            n_shards,
            builder_ref="repro.scenarios.runtime:build_scenario_partitioned",
            merge=merge_scenario_partials,
        )
    if mode != "inproc":
        raise ValueError(f"unknown partition_mode {mode!r}")
    t0 = time.perf_counter()
    build = build_scenario_partitioned(spec, n_shards)
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        drive_partitioned(build)
    finally:
        if gc_was_enabled:
            gc.enable()
    partials = [collect_partial(build, s) for s in range(n_shards)]
    return merge_scenario_partials(spec, partials, time.perf_counter() - t0)
