"""Execute one scenario-carrying RunSpec.

:func:`_execute_scenario_spec` is the scenario counterpart of the
simulator backend's single-server body
(:mod:`repro.measure.simbackend`): boot every pool, stand up every
fleet's Treadmill instances, start antagonists, drive the shared
simulator to completion, and report — overall metrics via the paper's
per-instance-then-combine rule plus per-(fleet, pool)
``group_metrics``.  It is a pure function of the spec, so the
serial-vs-parallel bit-identity guarantee of the execution layer
extends to scenarios unchanged.  The ``fleet=``/``pool=`` labels each
instance report carries double as the guard layer's grouping key: the
aggregation-imbalance detector (:mod:`repro.guards.detectors`) audits
per-client sample shares both pooled and per ``(fleet, pool)`` scope,
and the per-instance guard tape (``phase_windows``/``warmup_tail``)
recorded by the shared :class:`~repro.core.treadmill.PhaseRecorder`
gives the drift detectors the same evidence here as on plain specs.  The simulator measurement backend
calls it for every scenario-carrying spec; the public
:func:`run_scenario_spec` name is a deprecated alias for
:func:`repro.measure.measure_spec`.
"""

from __future__ import annotations

import gc
import time
import warnings
from typing import Dict, List

from ..core.aggregation import aggregate_quantile, grouped_quantiles
from ..core.arrival import arrival_from_spec
from ..core.treadmill import TreadmillConfig, TreadmillInstance
from .bench import ScenarioBench
from .schema import ScenarioSpec

__all__ = ["run_scenario_spec"]


def run_scenario_spec(spec) -> "RunResult":
    """Deprecated alias for :func:`repro.measure.measure_spec`.

    Kept so pre-PR-7 callers continue to work; dispatching through the
    measurement registry also honours ``spec.backend`` instead of
    silently assuming the simulator.
    """
    warnings.warn(
        "run_scenario_spec() is deprecated; use repro.run(spec) or "
        "repro.measure.measure_spec(spec) (see exec/API.md migration table)",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..measure.api import measure_spec

    return measure_spec(spec)


def _execute_scenario_spec(spec) -> "RunResult":
    """Execute one scenario experiment described by ``spec.scenario``."""
    # Late imports from exec.spec: this module is imported *by* it.
    from ..exec.spec import RunResult, metric_samples

    scenario: ScenarioSpec = spec.scenario
    if scenario is None:
        raise ValueError("run_scenario_spec needs a scenario-carrying spec")
    t0 = time.perf_counter()
    bench = ScenarioBench(scenario, run_index=spec.run_index)

    instances: List[TreadmillInstance] = []
    for fleet in scenario.fleets:
        view = bench.fleet_view(fleet.name)
        rate_per_instance = bench.fleet_total_rate(fleet.name) / fleet.instances
        for i in range(fleet.instances):
            arrival = None
            if fleet.arrival is not None:
                arrival = arrival_from_spec(
                    {**dict(fleet.arrival), "rate_rps": rate_per_instance}
                )
            tm_cfg = TreadmillConfig(
                rate_rps=rate_per_instance,
                connections=fleet.connections_per_instance,
                warmup_samples=fleet.warmup_samples,
                measurement_samples=fleet.measurement_samples_per_instance,
                keep_raw=spec.keep_raw,
                arrival=arrival,
                start_us=fleet.start_us,
            )
            instances.append(
                TreadmillInstance(
                    view,
                    f"{fleet.name}{i}",
                    tm_cfg,
                    fleet=fleet.name,
                    pool=fleet.target,
                )
            )

    bench.start_antagonists()
    for inst in instances:
        inst.start()
    # Same GC discipline as the legacy path: the event loop allocates
    # no reference cycles, so mid-run cyclic-GC passes are pure cost.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        bench.run_to_completion(instances)
    finally:
        if gc_was_enabled:
            gc.enable()

    reports = [inst.report() for inst in instances]
    samples_by_client = {r.name: metric_samples(r) for r in reports}
    metrics = {
        q: aggregate_quantile(samples_by_client, q, combine=spec.combine)
        for q in spec.quantiles
    }
    group_metrics = grouped_quantiles(
        samples_by_client,
        {r.name: r.group for r in reports},
        spec.quantiles,
        combine=spec.combine,
    )
    server_utils: Dict[str, float] = {}
    for servers in bench.pools.values():
        for server in servers:
            server_utils[server.name] = server.measured_utilization()
    return RunResult(
        run_index=spec.run_index,
        reports=reports,
        metrics=metrics,
        # One scalar slot for many servers: report the bottleneck (the
        # hottest server), which is what capacity reasoning needs.
        server_utilization=float(max(server_utils.values())),
        client_utilizations={
            name: client.utilization() for name, client in bench.clients.items()
        },
        spec_digest=spec.digest(),
        wall_s=time.perf_counter() - t0,
        events_processed=bench.sim.events_processed,
        group_metrics=group_metrics,
    )
