"""The curated scenario library.

Versioned JSON scenario documents shipped inside this package
(``repro/scenarios/library/*.json``), loadable by name:

* ``colocated_antagonist`` — a noisy neighbour pinned to one socket of
  the cache server, with an on/off factor for attribution;
* ``heterogeneous_pool`` — one fleet per pool over a fast and a slow
  server pool (per-(fleet, pool) aggregation made visible);
* ``cross_rack_shift`` — a remote fleet joins mid-run from another
  rack, shifting load across the spine;
* ``mcrouter_fanout`` — an mcrouter front tier over a 16-shard
  memcached pool, probed per tier;
* ``diurnal_flash_crowd`` — a diurnally modulated arrival process with
  a flash-crowd spike mid-measurement.

``list_scenarios()`` enumerates the names; ``load_scenario(name)``
returns the validated :class:`~repro.scenarios.schema.ScenarioSpec`.
"""

from __future__ import annotations

import json
from importlib import resources
from typing import List

from ..config import scenario_from_json
from ..schema import ScenarioSpec

__all__ = ["list_scenarios", "load_scenario"]

_PACKAGE = __name__


def list_scenarios() -> List[str]:
    """Names of every library scenario, sorted."""
    names = []
    for entry in resources.files(_PACKAGE).iterdir():
        if entry.name.endswith(".json"):
            names.append(entry.name[: -len(".json")])
    return sorted(names)


def load_scenario(name: str) -> ScenarioSpec:
    """Load and validate one library scenario by name."""
    path = resources.files(_PACKAGE) / f"{name}.json"
    if not path.is_file():
        raise KeyError(
            f"unknown library scenario {name!r} (have {list_scenarios()})"
        )
    return scenario_from_json(json.loads(path.read_text()))
