"""Scenario JSON loading and serialization.

:func:`scenario_from_json` builds a validated
:class:`~repro.scenarios.schema.ScenarioSpec` from a dict, a JSON
string, or a file path; :func:`scenario_to_jsonable` is its exact
inverse (load(dump(spec)) == spec, digest and all — the round-trip the
config tests pin down).  Validation is strict at every level via
:func:`repro.core.config.require_known_keys`: an unknown or misspelt
key raises a :class:`ValueError` naming the bad key and its nearest
valid neighbour, never a silent ignore.

The nested workload / hardware / arrival / link / spine dicts are
validated here by running them through their real loaders once, then
carried as plain dicts inside the spec (see the schema module
docstring for why).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Optional, Union

from ..core.arrival import arrival_from_spec
from ..core.config import (
    hardware_from_json,
    load_json,
    require_known_keys,
    workload_from_json,
)
from ..sim.network import LinkConfig, SpineConfig
from .schema import (
    SCENARIO_SCHEMA,
    AntagonistSpec,
    ClientFleetSpec,
    ScenarioFactor,
    ScenarioSpec,
    ServerPoolSpec,
)

__all__ = [
    "scenario_from_json",
    "scenario_to_jsonable",
    "scenario_to_json",
    "link_from_json",
    "spine_from_json",
]


def link_from_json(source: Union[str, Path, Dict]) -> LinkConfig:
    """Build a :class:`~repro.sim.network.LinkConfig` from JSON (strict)."""
    cfg = dict(load_json(source))
    require_known_keys(
        "link configuration", cfg, [f.name for f in dataclasses.fields(LinkConfig)]
    )
    return LinkConfig(**cfg)


def spine_from_json(source: Union[str, Path, Dict]) -> SpineConfig:
    """Build a :class:`~repro.sim.network.SpineConfig` from JSON (strict)."""
    cfg = dict(load_json(source))
    require_known_keys(
        "spine configuration", cfg, [f.name for f in dataclasses.fields(SpineConfig)]
    )
    return SpineConfig(**cfg)


def _fields(cls) -> list:
    return [f.name for f in dataclasses.fields(cls)]


def _build_pool(cfg: Dict) -> ServerPoolSpec:
    cfg = dict(cfg)
    context = f"pool {cfg.get('name', '?')!r} configuration"
    require_known_keys(context, cfg, _fields(ServerPoolSpec))
    pool = ServerPoolSpec(**cfg)
    # Validate the nested dicts by building the real objects once; the
    # spec keeps the dict form.
    workload_from_json(dict(pool.workload))
    if pool.hardware is not None:
        hardware_from_json(dict(pool.hardware))
    if pool.link is not None:
        link_from_json(dict(pool.link))
    return pool


def _build_fleet(cfg: Dict) -> ClientFleetSpec:
    cfg = dict(cfg)
    context = f"fleet {cfg.get('name', '?')!r} configuration"
    require_known_keys(context, cfg, _fields(ClientFleetSpec))
    fleet = ClientFleetSpec(**cfg)
    if fleet.arrival is not None:
        # Validate with a placeholder rate (the runtime injects the
        # real per-instance rate).
        arrival_from_spec({**dict(fleet.arrival), "rate_rps": 1000.0})
    return fleet


def _build_antagonist(cfg: Dict) -> AntagonistSpec:
    cfg = dict(cfg)
    context = f"antagonist {cfg.get('name', '?')!r} configuration"
    require_known_keys(context, cfg, _fields(AntagonistSpec))
    return AntagonistSpec(**cfg)


def _build_factor(cfg: Dict) -> ScenarioFactor:
    cfg = dict(cfg)
    context = f"factor {cfg.get('name', '?')!r} configuration"
    require_known_keys(context, cfg, _fields(ScenarioFactor))
    return ScenarioFactor(**cfg)


def scenario_from_json(source: Union[str, Path, Dict]) -> ScenarioSpec:
    """Build a fully validated :class:`ScenarioSpec` from JSON."""
    cfg = dict(load_json(source))
    require_known_keys("scenario configuration", cfg, _fields(ScenarioSpec))
    for section, builder in (
        ("pools", _build_pool),
        ("fleets", _build_fleet),
        ("antagonists", _build_antagonist),
        ("factors", _build_factor),
    ):
        if section in cfg:
            items = cfg[section]
            if not isinstance(items, (list, tuple)):
                raise ValueError(f"scenario {section!r} must be a list")
            cfg[section] = tuple(builder(item) for item in items)
    if cfg.get("spine") is not None:
        spine_from_json(dict(cfg["spine"]))
    spec = ScenarioSpec(**cfg)
    # The factor levels must substitute cleanly into the document at
    # every configuration; exercising both corners here turns a bad
    # path or level into a load-time error instead of a mid-sweep one.
    if spec.factors:
        from .compiler import apply_factor_levels

        apply_factor_levels(spec, tuple(0 for _ in spec.factors))
        apply_factor_levels(spec, tuple(1 for _ in spec.factors))
    return spec


def _jsonable(value):
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out = {}
        for f in dataclasses.fields(value):
            v = getattr(value, f.name)
            if v == f.default and f.default is not dataclasses.MISSING:
                continue  # keep the document minimal and diff-friendly
            out[f.name] = _jsonable(v)
        return out
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    return value


def scenario_to_jsonable(spec: ScenarioSpec) -> Dict:
    """The JSON-ready dict form; ``scenario_from_json`` inverts it."""
    doc = _jsonable(spec)
    # Always pin the schema version in serialized documents, even when
    # it equals the default.
    doc["schema"] = spec.schema
    # Required fields must survive even if they equal a default.
    doc.setdefault("name", spec.name)
    return doc


def scenario_to_json(spec: ScenarioSpec, indent: Optional[int] = 2) -> str:
    return json.dumps(scenario_to_jsonable(spec), indent=indent, sort_keys=False)
