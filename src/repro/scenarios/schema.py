"""The declarative scenario schema.

A :class:`ScenarioSpec` is a frozen, content-digestable description of
one N-client-fleet x M-server-pool load-testing topology:

* **server pools** — homogeneous groups of
  :class:`~repro.sim.machine.ServerMachine` hosts (per-pool workload,
  hardware, rack placement, access link);
* **client fleets** — groups of Treadmill instances targeting one
  pool, each fleet with its own offered load, arrival process, rack,
  sample budget, and start delay;
* **antagonists** — colocated background processes pinned to one
  socket of a pool's servers (the noisy-neighbour interference model);
* **factors** — two-level factor definitions over any scenario field,
  expanded into a full factorial by the compiler
  (:mod:`repro.scenarios.compiler`) for per-(fleet, pool) attribution.

Workload / hardware / arrival / link / spine values are carried as
plain JSON-level dicts, not constructed objects: the spec round-trips
through JSON byte-for-byte, diffs cleanly in version control, and the
objects are built exactly once at run time by the loaders in
:mod:`repro.core.config` and :mod:`repro.scenarios.config`.  All
numeric fields are coerced on construction so a JSON ``80000`` and a
Python ``80000.0`` produce the same content digest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

__all__ = [
    "SCENARIO_SCHEMA",
    "ServerPoolSpec",
    "ClientFleetSpec",
    "AntagonistSpec",
    "ScenarioFactor",
    "ScenarioSpec",
]

#: Bump when the meaning of a scenario field changes; recorded in every
#: serialized scenario and checked by the loader.
SCENARIO_SCHEMA = 1


def _freeze_dict(value: Optional[Mapping]) -> Optional[Dict]:
    if value is None:
        return None
    if not isinstance(value, Mapping):
        raise ValueError(f"expected a mapping, got {type(value).__name__}")
    return dict(value)


@dataclass(frozen=True)
class ServerPoolSpec:
    """A homogeneous group of server hosts under test."""

    name: str
    #: Workload configuration dict (``repro.core.config.workload_from_json``).
    workload: Mapping
    #: Number of identical servers in the pool.
    count: int = 1
    #: Rack the whole pool is placed in.
    rack: str = "rack0"
    #: Optional hardware override dict (``hardware_from_json``); None
    #: keeps the default :class:`~repro.sim.machine.HardwareSpec`.
    hardware: Optional[Mapping] = None
    #: Optional access-link override dict (LinkConfig fields).
    link: Optional[Mapping] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("pool name must be non-empty")
        object.__setattr__(self, "count", int(self.count))
        if self.count < 1:
            raise ValueError(f"pool {self.name!r}: count must be >= 1")
        object.__setattr__(self, "workload", _freeze_dict(self.workload))
        if not self.workload:
            raise ValueError(f"pool {self.name!r}: workload config required")
        object.__setattr__(self, "hardware", _freeze_dict(self.hardware))
        object.__setattr__(self, "link", _freeze_dict(self.link))


@dataclass(frozen=True)
class ClientFleetSpec:
    """A group of Treadmill instances driving one server pool.

    Exactly one of ``rate_rps`` (the fleet's total offered load) /
    ``target_utilization`` (the per-server utilization this fleet's
    load alone would drive its pool to) must be set — the same
    exclusivity rule as :class:`~repro.exec.spec.RunSpec`.
    """

    name: str
    #: Name of the server pool this fleet targets.
    target: str
    instances: int = 2
    connections_per_instance: int = 8
    rate_rps: Optional[float] = None
    target_utilization: Optional[float] = None
    #: Rack placement; None colocates the fleet with its target pool.
    rack: Optional[str] = None
    #: Optional arrival-process dict (``arrival_from_spec`` vocabulary,
    #: without ``rate_rps`` — the per-instance rate is injected by the
    #: runtime).  None means Poisson at the per-instance rate.
    arrival: Optional[Mapping] = None
    warmup_samples: int = 300
    measurement_samples_per_instance: int = 5_000
    #: Virtual-time delay before the fleet begins sending (load shift,
    #: flash crowd); 0 starts immediately.
    start_us: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("fleet name must be non-empty")
        if not self.target:
            raise ValueError(f"fleet {self.name!r}: target pool required")
        object.__setattr__(self, "instances", int(self.instances))
        object.__setattr__(
            self, "connections_per_instance", int(self.connections_per_instance)
        )
        object.__setattr__(self, "warmup_samples", int(self.warmup_samples))
        object.__setattr__(
            self,
            "measurement_samples_per_instance",
            int(self.measurement_samples_per_instance),
        )
        object.__setattr__(self, "start_us", float(self.start_us))
        if self.rate_rps is not None:
            object.__setattr__(self, "rate_rps", float(self.rate_rps))
        if self.target_utilization is not None:
            object.__setattr__(
                self, "target_utilization", float(self.target_utilization)
            )
        if (self.rate_rps is None) == (self.target_utilization is None):
            raise ValueError(
                f"fleet {self.name!r}: set exactly one of rate_rps / "
                "target_utilization"
            )
        if self.instances < 1:
            raise ValueError(f"fleet {self.name!r}: instances must be >= 1")
        if self.connections_per_instance < 1:
            raise ValueError(
                f"fleet {self.name!r}: connections_per_instance must be >= 1"
            )
        if self.measurement_samples_per_instance < 1:
            raise ValueError(
                f"fleet {self.name!r}: measurement_samples_per_instance must be >= 1"
            )
        if self.start_us < 0:
            raise ValueError(f"fleet {self.name!r}: start_us must be non-negative")
        object.__setattr__(self, "arrival", _freeze_dict(self.arrival))
        if self.arrival is not None and "rate_rps" in self.arrival:
            raise ValueError(
                f"fleet {self.name!r}: arrival dict must not set rate_rps "
                "(the runtime injects the per-instance rate)"
            )


@dataclass(frozen=True)
class AntagonistSpec:
    """A colocated background process on one socket of a pool's hosts."""

    name: str
    #: Pool whose servers host the antagonist.
    pool: str
    #: Index of the single server to colocate on; None means every
    #: server of the pool runs its own antagonist.
    server: Optional[int] = None
    socket: int = 0
    #: Burst rate; 0 disables (the natural "off" factor level).
    rate_rps: float = 2_000.0
    work_us: float = 50.0
    fixed_us: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("antagonist name must be non-empty")
        if not self.pool:
            raise ValueError(f"antagonist {self.name!r}: pool required")
        if self.server is not None:
            object.__setattr__(self, "server", int(self.server))
            if self.server < 0:
                raise ValueError(f"antagonist {self.name!r}: server must be >= 0")
        object.__setattr__(self, "socket", int(self.socket))
        object.__setattr__(self, "rate_rps", float(self.rate_rps))
        object.__setattr__(self, "work_us", float(self.work_us))
        object.__setattr__(self, "fixed_us", float(self.fixed_us))
        if self.rate_rps < 0:
            raise ValueError(f"antagonist {self.name!r}: rate_rps must be >= 0")


@dataclass(frozen=True)
class ScenarioFactor:
    """A two-level factor over one scenario field.

    ``path`` addresses the field dotted from a named element —
    ``"antagonists.noisy.rate_rps"``,
    ``"pools.cache.hardware.cpu.turbo_enabled"``,
    ``"fleets.front.rate_rps"`` — or from the shared ``spine``.  The
    compiler substitutes ``low`` / ``high`` into the JSON form of the
    scenario and re-validates, so a factor can never reach a field the
    schema would reject.
    """

    name: str
    path: str
    low: object
    high: object

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("factor name must be non-empty")
        parts = self.path.split(".")
        section = parts[0]
        if section in ("pools", "fleets", "antagonists"):
            if len(parts) < 3:
                raise ValueError(
                    f"factor {self.name!r}: path {self.path!r} must be "
                    f"'{section}.<name>.<field...>'"
                )
        elif section == "spine":
            if len(parts) < 2:
                raise ValueError(
                    f"factor {self.name!r}: path {self.path!r} must be "
                    "'spine.<field>'"
                )
        else:
            raise ValueError(
                f"factor {self.name!r}: path must start with one of "
                f"pools/fleets/antagonists/spine, got {section!r}"
            )


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete declarative scenario (see module docstring)."""

    name: str
    pools: Tuple[ServerPoolSpec, ...]
    fleets: Tuple[ClientFleetSpec, ...]
    antagonists: Tuple[AntagonistSpec, ...] = ()
    factors: Tuple[ScenarioFactor, ...] = ()
    #: Optional SpineConfig override dict for the cross-rack fabric.
    spine: Optional[Mapping] = None
    #: Optional fault plan dict (``repro.faults.plan.FaultPlan`` JSON);
    #: applied at the execution layer by drivers that honour it (the
    #: CLI installs it as the execution-scope fault plan).
    fault_plan: Optional[Mapping] = None
    #: Independent runs per factor configuration.
    replications: int = 1
    quantiles: Tuple[float, ...] = (0.5, 0.95, 0.99)
    combine: str = "mean"
    keep_raw: bool = False
    seed: int = 0
    description: str = ""
    schema: int = SCENARIO_SCHEMA

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        object.__setattr__(self, "pools", tuple(self.pools))
        object.__setattr__(self, "fleets", tuple(self.fleets))
        object.__setattr__(self, "antagonists", tuple(self.antagonists))
        object.__setattr__(self, "factors", tuple(self.factors))
        object.__setattr__(self, "spine", _freeze_dict(self.spine))
        object.__setattr__(self, "fault_plan", _freeze_dict(self.fault_plan))
        object.__setattr__(self, "replications", int(self.replications))
        object.__setattr__(
            self, "quantiles", tuple(float(q) for q in self.quantiles)
        )
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "schema", int(self.schema))
        if int(self.schema) != SCENARIO_SCHEMA:
            raise ValueError(
                f"scenario {self.name!r}: schema {self.schema} != "
                f"supported {SCENARIO_SCHEMA}"
            )
        if not self.pools:
            raise ValueError(f"scenario {self.name!r}: at least one pool required")
        if not self.fleets:
            raise ValueError(f"scenario {self.name!r}: at least one fleet required")
        if self.replications < 1:
            raise ValueError(f"scenario {self.name!r}: replications must be >= 1")
        pool_names = [p.name for p in self.pools]
        if len(set(pool_names)) != len(pool_names):
            raise ValueError(f"scenario {self.name!r}: duplicate pool names")
        fleet_names = [f.name for f in self.fleets]
        if len(set(fleet_names)) != len(fleet_names):
            raise ValueError(f"scenario {self.name!r}: duplicate fleet names")
        if set(fleet_names) & set(pool_names):
            raise ValueError(
                f"scenario {self.name!r}: fleet and pool names must not "
                "overlap (host names are derived from them)"
            )
        pools_by_name = {p.name: p for p in self.pools}
        for f_ in self.fleets:
            if f_.target not in pools_by_name:
                raise ValueError(
                    f"scenario {self.name!r}: fleet {f_.name!r} targets "
                    f"unknown pool {f_.target!r} (have {sorted(pools_by_name)})"
                )
        antagonist_names = [a.name for a in self.antagonists]
        if len(set(antagonist_names)) != len(antagonist_names):
            raise ValueError(f"scenario {self.name!r}: duplicate antagonist names")
        for a in self.antagonists:
            if a.pool not in pools_by_name:
                raise ValueError(
                    f"scenario {self.name!r}: antagonist {a.name!r} names "
                    f"unknown pool {a.pool!r} (have {sorted(pools_by_name)})"
                )
            if a.server is not None and a.server >= pools_by_name[a.pool].count:
                raise ValueError(
                    f"scenario {self.name!r}: antagonist {a.name!r} server "
                    f"index {a.server} out of range for pool {a.pool!r} "
                    f"(count {pools_by_name[a.pool].count})"
                )
        factor_names = [f_.name for f_ in self.factors]
        if len(set(factor_names)) != len(factor_names):
            raise ValueError(f"scenario {self.name!r}: duplicate factor names")

    def pool(self, name: str) -> ServerPoolSpec:
        for p in self.pools:
            if p.name == name:
                return p
        raise KeyError(f"unknown pool {name!r}")

    def fleet(self, name: str) -> ClientFleetSpec:
        for f_ in self.fleets:
            if f_.name == name:
                return f_
        raise KeyError(f"unknown fleet {name!r}")

    @property
    def groups(self) -> Tuple[Tuple[str, str], ...]:
        """All (fleet, pool) grouping keys, in fleet order."""
        return tuple((f_.name, f_.target) for f_ in self.fleets)
