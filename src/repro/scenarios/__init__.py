"""Declarative scenarios: N-fleet x M-pool topologies compiled to RunSpecs.

The scenario layer sits *above* the execution layer: a
:class:`~repro.scenarios.schema.ScenarioSpec` declares client fleets,
server pools, placement, antagonists, and factor levels;
:func:`~repro.scenarios.compiler.compile_scenario` expands it into
frozen :class:`~repro.exec.spec.RunSpec` values that flow through the
existing executors and result cache unchanged.  Degenerate 1x1
scenarios lower to plain RunSpecs bit-identically to direct
configuration (see the compiler module docstring).
"""

from .attribution import ScenarioAttributionStudy, group_experiment_samples
from .bench import ScenarioBench
from .compiler import (
    apply_factor_levels,
    compile_scenario,
    expand_scenario,
    is_degenerate,
    lower_degenerate,
)
from .config import (
    link_from_json,
    scenario_from_json,
    scenario_to_json,
    scenario_to_jsonable,
    spine_from_json,
)
from .library import list_scenarios, load_scenario
from .runtime import run_scenario_spec
from .schema import (
    SCENARIO_SCHEMA,
    AntagonistSpec,
    ClientFleetSpec,
    ScenarioFactor,
    ScenarioSpec,
    ServerPoolSpec,
)

__all__ = [
    "SCENARIO_SCHEMA",
    "ScenarioSpec",
    "ServerPoolSpec",
    "ClientFleetSpec",
    "AntagonistSpec",
    "ScenarioFactor",
    "scenario_from_json",
    "scenario_to_json",
    "scenario_to_jsonable",
    "link_from_json",
    "spine_from_json",
    "apply_factor_levels",
    "compile_scenario",
    "expand_scenario",
    "is_degenerate",
    "lower_degenerate",
    "ScenarioBench",
    "run_scenario_spec",
    "ScenarioAttributionStudy",
    "group_experiment_samples",
    "list_scenarios",
    "load_scenario",
]
