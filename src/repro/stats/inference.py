"""Statistical inference on quantile-regression fits.

Three pieces the paper's Tables and Figures need beyond point
estimates:

* **Standard errors and p-values** (Table IV's ``Std. Err`` /
  ``p-value`` columns).  We use a cluster bootstrap that resamples
  *experiments* (whole runs) within each factor configuration: latency
  samples within a run are correlated (shared boot state — the very
  hysteresis the paper documents), so resampling raw samples would
  understate the variance.  z-scores against the bootstrap SE give
  two-sided p-values.

* **pseudo-R²** (Equation 2, Fig. 11).  Quantile regression has no
  classical R²; the paper defines one as ``1 - L_model / L_const``
  where both losses are the tau-weighted absolute errors (Equations
  3-4) and the constant model is the best single-value predictor of
  the tau-quantile — i.e. the unconditional tau-quantile of y.

* **Factor screening** (Section IV-B): a permutation test for whether
  a candidate factor shifts the tau-quantile at all, used to select
  the factor list before the factorial sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats as _scipy_stats

from .design import model_matrix
from .quantreg import QuantRegResult, fit_quantile_regression, pinball_loss

__all__ = [
    "ExperimentSample",
    "expand_design",
    "run_quantile_design",
    "pseudo_r2",
    "fit_with_inference",
    "screen_factor",
]


@dataclass
class ExperimentSample:
    """One experiment: a coded factor configuration and its latency
    samples (the paper's 20k sub-sampled measurements per run)."""

    coded: Tuple[int, ...]
    samples: np.ndarray

    def __post_init__(self) -> None:
        self.samples = np.asarray(self.samples, dtype=float)
        if self.samples.ndim != 1 or self.samples.size == 0:
            raise ValueError("samples must be a non-empty 1-D array")


def expand_design(
    experiments: Sequence[ExperimentSample],
    names: Sequence[str],
    max_order: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, List[str]]:
    """Expand per-experiment samples into (X, y, columns) for fitting.

    Each experiment's design row is repeated once per latency sample.
    """
    if not experiments:
        raise ValueError("need at least one experiment")
    rows = []
    ys = []
    for exp in experiments:
        rows.extend([exp.coded] * exp.samples.size)
        ys.append(exp.samples)
    X, columns = model_matrix(rows, names, max_order)
    return X, np.concatenate(ys), columns


def pseudo_r2(y: np.ndarray, pred: np.ndarray, tau: float) -> float:
    """Equation 2: goodness-of-fit of a quantile model in [0, 1].

    1 means perfect conditional-quantile prediction; 0 means no better
    than the best constant (the unconditional tau-quantile).  Slightly
    negative values (worse than constant, possible out-of-sample) are
    clamped to 0.
    """
    y = np.asarray(y, dtype=float)
    pred = np.asarray(pred, dtype=float)
    model_loss = pinball_loss(y, pred, tau)
    const = float(np.quantile(y, tau))
    const_loss = pinball_loss(y, np.full_like(y, const), tau)
    if const_loss == 0.0:
        return 1.0 if model_loss == 0.0 else 0.0
    return max(0.0, 1.0 - model_loss / const_loss)


def run_quantile_design(
    experiments: Sequence[ExperimentSample],
    names: Sequence[str],
    tau: float,
    max_order: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, List[str]]:
    """One observation per experiment: that run's tau-quantile.

    This is the paper's stated design — "we design the response
    variable to be a particular quantile (e.g., 99th-percentile) of the
    latency distribution" — with each experiment's quantile estimated
    from its (sub-sampled) latency samples.  The across-run variation
    of the response is exactly the hysteresis the procedure must model,
    and it is why the paper's pseudo-R² can reach 0.9+: factor effects
    dwarf run-to-run noise, while raw per-request noise never would.
    """
    if not experiments:
        raise ValueError("need at least one experiment")
    rows = [exp.coded for exp in experiments]
    y = np.array([float(np.quantile(exp.samples, tau)) for exp in experiments])
    X, columns = model_matrix(rows, names, max_order)
    return X, y, columns


def fit_with_inference(
    experiments: Sequence[ExperimentSample],
    names: Sequence[str],
    tau: float,
    max_order: Optional[int] = None,
    n_boot: int = 200,
    perturb_sd: float = 0.01,
    rng: Optional[np.random.Generator] = None,
    method: str = "auto",
    response: str = "run_quantile",
    fit_tau: float = 0.5,
) -> Tuple[QuantRegResult, float]:
    """Fit QR on a factorial experiment set with bootstrap inference.

    Returns ``(result, pseudo_r2)`` where ``result`` carries
    coefficient estimates, bootstrap standard errors, and two-sided
    p-values — the three columns of the paper's Table IV.

    Two response designs are supported:

    * ``response="run_quantile"`` (default, the paper's design): each
      experiment contributes one observation — its tau-quantile — and
      the regression is a *median* (``fit_tau=0.5``) fit over runs, so
      coefficients describe the typical run and are robust to outlier
      runs.
    * ``response="raw"``: Equation 1 taken literally — the regression
      is fit at ``tau`` on the pooled per-request latencies.
      Coefficients match the run-quantile design in expectation, but
      pseudo-R² is depressed by irreducible per-request noise.

    The bootstrap resamples experiments with replacement *within each
    configuration cell*, preserving the balanced design while
    capturing run-to-run (hysteresis) variance.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if response == "run_quantile":
        build = lambda exps: run_quantile_design(exps, names, tau, max_order)
        eff_tau = fit_tau
    elif response == "raw":
        build = lambda exps: expand_design(exps, names, max_order)
        eff_tau = tau
    else:
        raise ValueError(f"unknown response design {response!r}")
    X, y, columns = build(experiments)
    result = fit_quantile_regression(
        X, y, eff_tau, columns=columns, method=method, perturb_sd=perturb_sd, rng=rng
    )
    result.tau = tau
    r2 = pseudo_r2(y, X @ result.coefficients, eff_tau)

    if n_boot > 0:
        by_cell: Dict[Tuple[int, ...], List[ExperimentSample]] = {}
        for exp in experiments:
            by_cell.setdefault(tuple(exp.coded), []).append(exp)
        boots = np.empty((n_boot, len(columns)))
        for b in range(n_boot):
            resampled: List[ExperimentSample] = []
            for cell_exps in by_cell.values():
                idx = rng.integers(0, len(cell_exps), size=len(cell_exps))
                resampled.extend(cell_exps[i] for i in idx)
            Xb, yb, _ = build(resampled)
            fit = fit_quantile_regression(
                Xb, yb, eff_tau, method=method, perturb_sd=perturb_sd, rng=rng
            )
            boots[b] = fit.coefficients
        stderr = boots.std(axis=0, ddof=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            z = np.where(stderr > 0, result.coefficients / stderr, np.inf)
        p_values = 2.0 * _scipy_stats.norm.sf(np.abs(z))
        result.stderr = stderr
        result.p_values = p_values
    return result, r2


def screen_factor(
    experiments: Sequence[ExperimentSample],
    factor_index: int,
    tau: float,
    n_perm: int = 500,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Permutation-test p-value for "factor affects the tau-quantile".

    Statistic: difference between the tau-quantile of all samples from
    high-level experiments and from low-level experiments.  The null
    distribution permutes experiment labels (not raw samples), keeping
    within-run correlation intact.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if not experiments:
        raise ValueError("need at least one experiment")
    levels = np.array([exp.coded[factor_index] for exp in experiments])
    if levels.min() == levels.max():
        raise ValueError("factor has only one level in these experiments")
    samples = [exp.samples for exp in experiments]

    def statistic(labels: np.ndarray) -> float:
        hi = np.concatenate([s for s, l in zip(samples, labels) if l == 1])
        lo = np.concatenate([s for s, l in zip(samples, labels) if l == 0])
        return float(np.quantile(hi, tau) - np.quantile(lo, tau))

    observed = abs(statistic(levels))
    hits = 0
    for _ in range(n_perm):
        perm = rng.permutation(levels)
        if abs(statistic(perm)) >= observed:
            hits += 1
    # +1 smoothing keeps the p-value away from an impossible exact 0.
    return (hits + 1) / (n_perm + 1)
