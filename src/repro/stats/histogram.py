"""Adaptive latency histogram.

Section II-B of the paper identifies *static histogram binning* as a
load-tester pitfall: fixed bucket bounds break when the server is
highly utilized, because latency keeps climbing before steady state and
escapes the histogram's range.  Treadmill instead (Section III-A):

1. runs a **calibration** phase that buffers raw samples and derives
   the bin range from observed data,
2. then aggregates into fixed-width bins to bound memory, and
3. **re-bins** (doubling the covered range, merging adjacent bins)
   whenever enough samples land above the current upper bound.

:class:`AdaptiveHistogram` implements exactly that.  Samples above the
current range are kept *raw* until they trigger a re-bin, so no sample
is ever dropped or clamped — quantile queries remain accurate at the
tail, which is the whole point of the exercise.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["AdaptiveHistogram"]


class AdaptiveHistogram:
    """Bounded-memory latency aggregation with adaptive range.

    Parameters
    ----------
    num_bins:
        Number of equal-width bins after calibration.
    calibration_size:
        Raw samples buffered before the bin range is derived.
    overflow_rebin_fraction:
        Re-bin when raw overflow samples exceed this fraction of the
        total count (the paper: "re-binned when sufficient amount of
        values exceed the histogram limits").
    range_margin:
        Headroom multiplier applied to the calibrated maximum so the
        steady-state distribution fits without immediate re-binning.
    """

    def __init__(
        self,
        num_bins: int = 512,
        calibration_size: int = 1000,
        overflow_rebin_fraction: float = 0.01,
        range_margin: float = 2.0,
    ):
        if num_bins < 2:
            raise ValueError("num_bins must be >= 2")
        if calibration_size < 2:
            raise ValueError("calibration_size must be >= 2")
        if not 0.0 < overflow_rebin_fraction <= 1.0:
            raise ValueError("overflow_rebin_fraction must be in (0, 1]")
        if range_margin < 1.0:
            raise ValueError("range_margin must be >= 1.0")
        self.num_bins = num_bins
        self.calibration_size = calibration_size
        self.overflow_rebin_fraction = overflow_rebin_fraction
        self.range_margin = range_margin

        self._calibrating = True
        self._raw: List[float] = []
        self._counts: Optional[np.ndarray] = None
        self._lo = 0.0
        self._hi = 0.0
        self._width = 0.0
        self._overflow: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self.rebin_events = 0

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    @property
    def calibrating(self) -> bool:
        """True while still buffering raw samples for range calibration."""
        return self._calibrating

    @property
    def count(self) -> int:
        return self._count

    @property
    def bounds(self) -> Tuple[float, float]:
        """Current (lower, upper) bin range; (0, 0) during calibration."""
        return (self._lo, self._hi)

    def add(self, value: float) -> None:
        """Record one latency sample (microseconds)."""
        if value != value or value < 0:
            raise ValueError(f"latency sample must be finite and >= 0, got {value!r}")
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if self._calibrating:
            self._raw.append(value)
            if len(self._raw) >= self.calibration_size:
                self._finish_calibration()
            return
        if value >= self._hi:
            self._overflow.append(value)
            if len(self._overflow) > self.overflow_rebin_fraction * self._count:
                self._rebin(value)
            return
        idx = int((value - self._lo) / self._width)
        if idx < 0:
            idx = 0  # below calibrated lower bound: clamp into first bin
        self._counts[idx] += 1

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.add(v)

    def _finish_calibration(self) -> None:
        """Derive the bin range from buffered samples and bin them."""
        raw = self._raw
        lo = min(raw)
        hi = max(raw) * self.range_margin
        if hi <= lo:
            hi = lo + 1.0
        width = (hi - lo) / self.num_bins
        if width <= 0.0:
            # Degenerate calibration window (denormal samples): the
            # span is positive but underflows to zero width per bin.
            # Widen to a unit range rather than divide by zero.
            hi = lo + 1.0
            width = (hi - lo) / self.num_bins
        self._lo = lo
        self._hi = hi
        self._width = width
        self._counts = np.zeros(self.num_bins, dtype=np.int64)
        for v in raw:
            idx = min(int((v - lo) / self._width), self.num_bins - 1)
            self._counts[idx] += 1
        self._raw = []
        self._calibrating = False

    def _rebin(self, trigger_value: float) -> None:
        """Double the range (possibly repeatedly) and fold in overflow.

        Adjacent bins merge pairwise each doubling, so the bin count
        stays constant and memory stays bounded.
        """
        needed = max(trigger_value, max(self._overflow)) * 1.01
        while self._hi < needed:
            half = self._counts.reshape(self.num_bins // 2, 2).sum(axis=1)
            merged = np.zeros(self.num_bins, dtype=np.int64)
            merged[: self.num_bins // 2] = half
            self._counts = merged
            self._hi = self._lo + 2.0 * (self._hi - self._lo)
            self._width = (self._hi - self._lo) / self.num_bins
        overflow, self._overflow = self._overflow, []
        for v in overflow:
            idx = min(int((v - self._lo) / self._width), self.num_bins - 1)
            self._counts[idx] += 1
        self.rebin_events += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def mean(self) -> float:
        """Exact mean of all ingested samples."""
        if self._count == 0:
            raise ValueError("histogram is empty")
        return self._sum / self._count

    def min(self) -> float:
        if self._count == 0:
            raise ValueError("histogram is empty")
        return self._min

    def max(self) -> float:
        if self._count == 0:
            raise ValueError("histogram is empty")
        return self._max

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile with within-bin interpolation.

        During calibration the raw buffer is used (exact); afterwards
        the estimate is accurate to one bin width plus any overflow
        samples, which are still raw and therefore exact.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self._count == 0:
            raise ValueError("cannot take a quantile of an empty histogram")
        if self._calibrating:
            return float(np.quantile(np.asarray(self._raw), q))
        target = q * self._count
        # Walk binned mass first, then the (sorted) raw overflow.
        cum = 0.0
        counts = self._counts
        for idx in range(self.num_bins):
            c = counts[idx]
            if c and cum + c >= target:
                frac = (target - cum) / c
                return self._lo + (idx + frac) * self._width
            cum += c
        overflow = sorted(self._overflow)
        if overflow:
            pos = min(int(target - cum), len(overflow) - 1)
            return overflow[max(0, pos)]
        return self._max

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        return [self.quantile(q) for q in qs]

    def cdf_points(self) -> Tuple[np.ndarray, np.ndarray]:
        """(latency, cumulative probability) points for plotting CDFs.

        Forces calibration to finish if still buffering.
        """
        if self._count == 0:
            raise ValueError("histogram is empty")
        if self._calibrating:
            xs = np.sort(np.asarray(self._raw, dtype=float))
            ps = np.arange(1, len(xs) + 1) / len(xs)
            return xs, ps
        edges = self._lo + self._width * np.arange(1, self.num_bins + 1)
        cum = np.cumsum(self._counts).astype(float)
        if self._overflow:
            overflow = np.sort(np.asarray(self._overflow, dtype=float))
            edges = np.concatenate([edges, overflow])
            cum = np.concatenate(
                [cum, cum[-1] + np.arange(1, len(overflow) + 1)]
            )
        return edges, cum / self._count

    def state(self) -> dict:
        """JSON-serializable snapshot (persist runs across processes).

        Round-trips exactly through :meth:`from_state`: counts, bounds,
        overflow samples, calibration buffer, and exact moment
        accumulators are all preserved.
        """
        return {
            "num_bins": self.num_bins,
            "calibration_size": self.calibration_size,
            "overflow_rebin_fraction": self.overflow_rebin_fraction,
            "range_margin": self.range_margin,
            "calibrating": self._calibrating,
            "raw": list(self._raw),
            "counts": None if self._counts is None else self._counts.tolist(),
            "lo": self._lo,
            "hi": self._hi,
            "overflow": list(self._overflow),
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "rebin_events": self.rebin_events,
        }

    @classmethod
    def from_state(cls, state: dict) -> "AdaptiveHistogram":
        """Rebuild a histogram from :meth:`state` output."""
        hist = cls(
            num_bins=state["num_bins"],
            calibration_size=state["calibration_size"],
            overflow_rebin_fraction=state["overflow_rebin_fraction"],
            range_margin=state["range_margin"],
        )
        hist._calibrating = state["calibrating"]
        hist._raw = list(state["raw"])
        if state["counts"] is not None:
            hist._counts = np.asarray(state["counts"], dtype=np.int64)
        hist._lo = state["lo"]
        hist._hi = state["hi"]
        hist._width = (
            (hist._hi - hist._lo) / hist.num_bins if not hist._calibrating else 0.0
        )
        hist._overflow = list(state["overflow"])
        hist._count = state["count"]
        hist._sum = state["sum"]
        hist._min = state["min"] if state["min"] is not None else math.inf
        hist._max = state["max"] if state["max"] is not None else -math.inf
        hist.rebin_events = state["rebin_events"]
        return hist

    def merge(self, other: "AdaptiveHistogram") -> "AdaptiveHistogram":
        """Pool two histograms into a new one (for ground-truth use).

        Implemented by re-ingesting the other's mass at bin midpoints;
        per-client *metric* aggregation (the statistically sound path)
        lives in :mod:`repro.core.aggregation` instead.
        """
        merged = AdaptiveHistogram(
            num_bins=self.num_bins,
            calibration_size=self.calibration_size,
            overflow_rebin_fraction=self.overflow_rebin_fraction,
            range_margin=self.range_margin,
        )
        for hist in (self, other):
            if hist._calibrating:
                merged.extend(hist._raw)
                continue
            mids = hist._lo + hist._width * (np.arange(hist.num_bins) + 0.5)
            for mid, c in zip(mids, hist._counts):
                for _ in range(int(c)):
                    merged.add(float(mid))
            merged.extend(hist._overflow)
        return merged
