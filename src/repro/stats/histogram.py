"""Adaptive latency histogram.

Section II-B of the paper identifies *static histogram binning* as a
load-tester pitfall: fixed bucket bounds break when the server is
highly utilized, because latency keeps climbing before steady state and
escapes the histogram's range.  Treadmill instead (Section III-A):

1. runs a **calibration** phase that buffers raw samples and derives
   the bin range from observed data,
2. then aggregates into fixed-width bins to bound memory, and
3. **re-bins** (doubling the covered range, merging adjacent bins)
   whenever enough samples land above the current upper bound.

:class:`AdaptiveHistogram` implements exactly that.  Samples above the
current range are kept *raw* until they trigger a re-bin, so no sample
is ever dropped or clamped — quantile queries remain accurate at the
tail, which is the whole point of the exercise.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["AdaptiveHistogram"]


class AdaptiveHistogram:
    """Bounded-memory latency aggregation with adaptive range.

    Parameters
    ----------
    num_bins:
        Number of equal-width bins after calibration.
    calibration_size:
        Raw samples buffered before the bin range is derived.
    overflow_rebin_fraction:
        Re-bin when raw overflow samples exceed this fraction of the
        total count (the paper: "re-binned when sufficient amount of
        values exceed the histogram limits").
    range_margin:
        Headroom multiplier applied to the calibrated maximum so the
        steady-state distribution fits without immediate re-binning.
    """

    def __init__(
        self,
        num_bins: int = 512,
        calibration_size: int = 1000,
        overflow_rebin_fraction: float = 0.01,
        range_margin: float = 2.0,
    ):
        if num_bins < 2:
            raise ValueError("num_bins must be >= 2")
        if calibration_size < 2:
            raise ValueError("calibration_size must be >= 2")
        if not 0.0 < overflow_rebin_fraction <= 1.0:
            raise ValueError("overflow_rebin_fraction must be in (0, 1]")
        if range_margin < 1.0:
            raise ValueError("range_margin must be >= 1.0")
        self.num_bins = num_bins
        self.calibration_size = calibration_size
        self.overflow_rebin_fraction = overflow_rebin_fraction
        self.range_margin = range_margin

        self._calibrating = True
        self._raw: List[float] = []
        self._counts: Optional[np.ndarray] = None
        self._lo = 0.0
        self._hi = 0.0
        self._width = 0.0
        self._overflow: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self.rebin_events = 0

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    @property
    def calibrating(self) -> bool:
        """True while still buffering raw samples for range calibration."""
        return self._calibrating

    @property
    def count(self) -> int:
        return self._count

    @property
    def bounds(self) -> Tuple[float, float]:
        """Current (lower, upper) bin range; (0, 0) during calibration."""
        return (self._lo, self._hi)

    def add(self, value: float) -> None:
        """Record one latency sample (microseconds)."""
        if value != value or value < 0:
            raise ValueError(f"latency sample must be finite and >= 0, got {value!r}")
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if self._calibrating:
            self._raw.append(value)
            if len(self._raw) >= self.calibration_size:
                self._finish_calibration()
            return
        if value >= self._hi:
            self._overflow.append(value)
            if len(self._overflow) > self.overflow_rebin_fraction * self._count:
                self._rebin(value)
            return
        idx = int((value - self._lo) / self._width)
        if idx < 0:
            idx = 0  # below calibrated lower bound: clamp into first bin
        self._counts[idx] += 1

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.add(v)

    def record_many(self, values) -> None:
        """Bulk-ingest a batch; exactly equivalent to sequential adds.

        The steady-state fast path vectorizes the in-range samples of
        each chunk (index computation and bin counting in numpy) while
        preserving :meth:`add`'s semantics bit-for-bit: the running
        ``_sum`` still accumulates one float at a time in order,
        calibration fills and finishes at exactly the same sample, and
        any overflow or invalid value is routed through the scalar
        :meth:`add` so re-binning and error behaviour are unchanged.
        """
        arr = np.asarray(values, dtype=float)
        if arr.ndim != 1:
            arr = arr.ravel()
        n = int(arr.size)
        if n == 0:
            return
        if np.isnan(arr).any() or bool((arr < 0).any()):
            # Invalid sample somewhere in the batch: the scalar loop
            # ingests the valid prefix and raises at the same index
            # sequential adds would.
            for v in arr.tolist():
                self.add(v)
            return
        i = 0
        counts = None
        while i < n:
            if self._calibrating:
                take = min(n - i, self.calibration_size - len(self._raw))
                chunk = arr[i : i + take].tolist()
                s = self._sum
                mn = self._min
                mx = self._max
                raw_append = self._raw.append
                for v in chunk:
                    s += v
                    if v < mn:
                        mn = v
                    if v > mx:
                        mx = v
                    raw_append(v)
                self._count += take
                self._sum = s
                self._min = mn
                self._max = mx
                if len(self._raw) >= self.calibration_size:
                    self._finish_calibration()
                i += take
                continue
            chunk = arr[i:]
            over = np.nonzero(chunk >= self._hi)[0]
            stop = int(over[0]) if over.size else int(chunk.size)
            if stop > 0:
                sub = chunk[:stop]
                # _sum must accumulate sequentially (float addition is
                # not associative; np.sum would drift by ulps).
                s = self._sum
                for v in sub.tolist():
                    s += v
                self._sum = s
                self._count += stop
                mn = float(sub.min())
                mx = float(sub.max())
                if mn < self._min:
                    self._min = mn
                if mx > self._max:
                    self._max = mx
                idx = ((sub - self._lo) / self._width).astype(np.int64)
                # add() clamps below-range samples into the first bin.
                np.clip(idx, 0, None, out=idx)
                if counts is None:
                    counts = self._counts
                counts += np.bincount(idx, minlength=self.num_bins)
                i += stop
            if i < n:
                # First at-or-above-range sample: scalar add() keeps
                # the overflow/re-bin bookkeeping exact, then the loop
                # resumes against the (possibly widened) range.
                self.add(float(arr[i]))
                counts = None  # _rebin may have replaced the array
                i += 1

    def _finish_calibration(self) -> None:
        """Derive the bin range from buffered samples and bin them."""
        raw = self._raw
        lo = min(raw)
        hi = max(raw) * self.range_margin
        if hi <= lo:
            hi = lo + 1.0
        width = (hi - lo) / self.num_bins
        if width <= 0.0:
            # Degenerate calibration window (denormal samples): the
            # span is positive but underflows to zero width per bin.
            # Widen to a unit range rather than divide by zero.
            hi = lo + 1.0
            width = (hi - lo) / self.num_bins
        self._lo = lo
        self._hi = hi
        self._width = width
        self._counts = np.zeros(self.num_bins, dtype=np.int64)
        for v in raw:
            idx = min(int((v - lo) / self._width), self.num_bins - 1)
            self._counts[idx] += 1
        self._raw = []
        self._calibrating = False

    def _rebin(self, trigger_value: float) -> None:
        """Double the range (possibly repeatedly) and fold in overflow.

        Adjacent bins merge pairwise each doubling, so the bin count
        stays constant and memory stays bounded.
        """
        needed = max(trigger_value, max(self._overflow)) * 1.01
        while self._hi < needed:
            half = self._counts.reshape(self.num_bins // 2, 2).sum(axis=1)
            merged = np.zeros(self.num_bins, dtype=np.int64)
            merged[: self.num_bins // 2] = half
            self._counts = merged
            self._hi = self._lo + 2.0 * (self._hi - self._lo)
            self._width = (self._hi - self._lo) / self.num_bins
        overflow, self._overflow = self._overflow, []
        for v in overflow:
            idx = min(int((v - self._lo) / self._width), self.num_bins - 1)
            self._counts[idx] += 1
        self.rebin_events += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def mean(self) -> float:
        """Exact mean of all ingested samples."""
        if self._count == 0:
            raise ValueError("histogram is empty")
        return self._sum / self._count

    def min(self) -> float:
        if self._count == 0:
            raise ValueError("histogram is empty")
        return self._min

    def max(self) -> float:
        if self._count == 0:
            raise ValueError("histogram is empty")
        return self._max

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile with within-bin interpolation.

        During calibration the raw buffer is used (exact); afterwards
        the estimate is accurate to one bin width plus any overflow
        samples, which are still raw and therefore exact.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self._count == 0:
            raise ValueError("cannot take a quantile of an empty histogram")
        if self._calibrating:
            return float(np.quantile(np.asarray(self._raw), q))
        target = q * self._count
        # Walk binned mass first, then the (sorted) raw overflow.
        cum = 0.0
        counts = self._counts
        for idx in range(self.num_bins):
            c = counts[idx]
            if c and cum + c >= target:
                frac = (target - cum) / c
                return self._lo + (idx + frac) * self._width
            cum += c
        overflow = sorted(self._overflow)
        if overflow:
            pos = min(int(target - cum), len(overflow) - 1)
            return overflow[max(0, pos)]
        return self._max

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        """Batch quantiles, bit-identical to per-q :meth:`quantile`.

        One cumsum + searchsorted replaces the per-q linear walk over
        the bins, and the raw overflow is sorted once instead of per q
        — metric extraction queries dense grids (thousands of points),
        where the scalar walk dominates report time.
        """
        qarr = np.asarray(qs, dtype=float)
        if qarr.size == 0:
            return []
        if not bool(np.all((qarr >= 0.0) & (qarr <= 1.0))):
            raise ValueError("q must be in [0, 1]")
        if self._count == 0:
            raise ValueError("cannot take a quantile of an empty histogram")
        if self._calibrating:
            raw = np.asarray(self._raw)
            return [float(np.quantile(raw, q)) for q in qarr.tolist()]
        counts = self._counts
        # int64 bin counts: the cumulative sums are exact integers
        # (representable in float64), so every comparison and the
        # interpolation arithmetic below match the scalar walk's float
        # accumulation bit for bit.
        cumsum = np.cumsum(counts)
        targets = qarr * self._count
        idxs = np.searchsorted(cumsum, targets, side="left")
        num_bins = self.num_bins
        lo = self._lo
        width = self._width
        in_bins = idxs < num_bins
        safe = np.where(in_bins, idxs, 0)
        c = counts[safe]
        direct = in_bins & (c > 0)
        # Same expressions as the scalar walk, elementwise: frac =
        # (target - cum_before) / c; value = lo + (idx + frac) * width.
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = (targets - (cumsum[safe] - c)) / c
            vals = lo + (safe + frac) * width
        if bool(direct.all()):
            return vals.tolist()
        # Slow path for the rare leftovers: targets beyond the binned
        # mass (raw overflow / max) and exact ties on empty leading
        # bins (the scalar walk skips zero-count bins).
        out = vals.tolist()
        sorted_overflow: Optional[List[float]] = None
        total_binned = int(cumsum[-1]) if num_bins else 0
        counts_list = counts.tolist()
        cumsum_list = cumsum.tolist()
        for i in np.nonzero(~direct)[0].tolist():
            target = float(targets[i])
            idx = int(idxs[i])
            while idx < num_bins and not counts_list[idx]:
                idx += 1
            if idx < num_bins:
                cb = counts_list[idx]
                frac_i = (target - (cumsum_list[idx] - cb)) / cb
                out[i] = lo + (idx + frac_i) * width
                continue
            if sorted_overflow is None:
                sorted_overflow = sorted(self._overflow)
            if sorted_overflow:
                pos = min(int(target - total_binned), len(sorted_overflow) - 1)
                out[i] = sorted_overflow[max(0, pos)]
            else:
                out[i] = self._max
        return out

    def cdf_points(self) -> Tuple[np.ndarray, np.ndarray]:
        """(latency, cumulative probability) points for plotting CDFs.

        Forces calibration to finish if still buffering.
        """
        if self._count == 0:
            raise ValueError("histogram is empty")
        if self._calibrating:
            xs = np.sort(np.asarray(self._raw, dtype=float))
            ps = np.arange(1, len(xs) + 1) / len(xs)
            return xs, ps
        edges = self._lo + self._width * np.arange(1, self.num_bins + 1)
        cum = np.cumsum(self._counts).astype(float)
        if self._overflow:
            overflow = np.sort(np.asarray(self._overflow, dtype=float))
            edges = np.concatenate([edges, overflow])
            cum = np.concatenate(
                [cum, cum[-1] + np.arange(1, len(overflow) + 1)]
            )
        return edges, cum / self._count

    def state(self) -> dict:
        """JSON-serializable snapshot (persist runs across processes).

        Round-trips exactly through :meth:`from_state`: counts, bounds,
        overflow samples, calibration buffer, and exact moment
        accumulators are all preserved.
        """
        return {
            "num_bins": self.num_bins,
            "calibration_size": self.calibration_size,
            "overflow_rebin_fraction": self.overflow_rebin_fraction,
            "range_margin": self.range_margin,
            "calibrating": self._calibrating,
            "raw": list(self._raw),
            "counts": None if self._counts is None else self._counts.tolist(),
            "lo": self._lo,
            "hi": self._hi,
            "overflow": list(self._overflow),
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "rebin_events": self.rebin_events,
        }

    @classmethod
    def from_state(cls, state: dict) -> "AdaptiveHistogram":
        """Rebuild a histogram from :meth:`state` output."""
        hist = cls(
            num_bins=state["num_bins"],
            calibration_size=state["calibration_size"],
            overflow_rebin_fraction=state["overflow_rebin_fraction"],
            range_margin=state["range_margin"],
        )
        hist._calibrating = state["calibrating"]
        hist._raw = list(state["raw"])
        if state["counts"] is not None:
            hist._counts = np.asarray(state["counts"], dtype=np.int64)
        hist._lo = state["lo"]
        hist._hi = state["hi"]
        hist._width = (
            (hist._hi - hist._lo) / hist.num_bins if not hist._calibrating else 0.0
        )
        hist._overflow = list(state["overflow"])
        hist._count = state["count"]
        hist._sum = state["sum"]
        hist._min = state["min"] if state["min"] is not None else math.inf
        hist._max = state["max"] if state["max"] is not None else -math.inf
        hist.rebin_events = state["rebin_events"]
        return hist

    def merge(self, other: "AdaptiveHistogram") -> "AdaptiveHistogram":
        """Pool two histograms into a new one (for ground-truth use).

        Implemented by re-ingesting the other's mass at bin midpoints;
        per-client *metric* aggregation (the statistically sound path)
        lives in :mod:`repro.core.aggregation` instead.
        """
        merged = AdaptiveHistogram(
            num_bins=self.num_bins,
            calibration_size=self.calibration_size,
            overflow_rebin_fraction=self.overflow_rebin_fraction,
            range_margin=self.range_margin,
        )
        for hist in (self, other):
            if hist._calibrating:
                merged.extend(hist._raw)
                continue
            mids = hist._lo + hist._width * (np.arange(hist.num_bins) + 0.5)
            for mid, c in zip(mids, hist._counts):
                for _ in range(int(c)):
                    merged.add(float(mid))
            merged.extend(hist._overflow)
        return merged
