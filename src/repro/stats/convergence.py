"""Convergence detection for repeated-experiment aggregation.

Two convergence questions appear in the paper's methodology:

* **Within a run** (Fig. 4's x-axis): has the running quantile
  estimate stabilized as samples accumulate?  Answered by
  :class:`RunningQuantileTracker`, which records the estimate's
  trajectory and reports stability over a trailing window.

* **Across runs** (Section III-B): performance hysteresis means a
  single converged run is *not* enough; the procedure repeats whole
  experiments "until the mean of the collected measurements has
  already converged".  :class:`MeanConvergence` implements that
  stopping rule: the half-width of the confidence interval of the mean
  of per-run metrics, relative to the mean, must drop below a
  tolerance.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np
from scipy import stats as _scipy_stats

__all__ = ["RunningQuantileTracker", "MeanConvergence"]


class RunningQuantileTracker:
    """Tracks how a quantile estimate evolves as samples stream in.

    Records a trajectory point every ``checkpoint_every`` samples;
    :meth:`stable` reports whether the last ``window`` checkpoints all
    sit within ``rel_tol`` of their own mean — the "converges to a
    singular value" behaviour of Fig. 4.
    """

    def __init__(self, q: float, checkpoint_every: int = 1000):
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.q = q
        self.checkpoint_every = checkpoint_every
        self._samples: List[float] = []
        self.trajectory: List[float] = []
        self.sample_counts: List[int] = []

    def add(self, value: float) -> None:
        self._samples.append(value)
        if len(self._samples) % self.checkpoint_every == 0:
            est = float(np.quantile(np.asarray(self._samples), self.q))
            self.trajectory.append(est)
            self.sample_counts.append(len(self._samples))

    def extend(self, values: Sequence[float]) -> None:
        for v in values:
            self.add(v)

    def current(self) -> float:
        if not self._samples:
            raise ValueError("no samples yet")
        return float(np.quantile(np.asarray(self._samples), self.q))

    def stable(self, window: int = 5, rel_tol: float = 0.02) -> bool:
        """True when the last ``window`` checkpoints agree to rel_tol."""
        if len(self.trajectory) < window:
            return False
        tail = np.asarray(self.trajectory[-window:])
        center = tail.mean()
        if center == 0:
            return bool(np.all(tail == 0))
        return bool(np.max(np.abs(tail - center)) / abs(center) <= rel_tol)


class MeanConvergence:
    """Stopping rule for the repeat-until-converged procedure.

    Feed one metric per completed run (e.g. that run's p99).  The rule
    declares convergence when the two-sided ``confidence`` interval of
    the mean has relative half-width below ``rel_tol``, with at least
    ``min_runs`` runs observed.
    """

    def __init__(
        self,
        rel_tol: float = 0.05,
        confidence: float = 0.95,
        min_runs: int = 5,
        max_runs: Optional[int] = None,
    ):
        if not 0 < rel_tol:
            raise ValueError("rel_tol must be positive")
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        if min_runs < 2:
            raise ValueError("min_runs must be >= 2 (variance needs two runs)")
        if max_runs is not None and max_runs < min_runs:
            raise ValueError("max_runs must be >= min_runs")
        self.rel_tol = rel_tol
        self.confidence = confidence
        self.min_runs = min_runs
        self.max_runs = max_runs
        self.values: List[float] = []

    def add(self, value: float) -> None:
        if not math.isfinite(value):
            raise ValueError(f"run metric must be finite, got {value!r}")
        self.values.append(value)

    @property
    def n(self) -> int:
        return len(self.values)

    def mean(self) -> float:
        if not self.values:
            raise ValueError("no runs recorded")
        return float(np.mean(self.values))

    def half_width(self) -> float:
        """Half-width of the t-based CI of the mean of run metrics."""
        n = len(self.values)
        if n < 2:
            return math.inf
        sd = float(np.std(self.values, ddof=1))
        if sd == 0.0:
            return 0.0
        t = _scipy_stats.t.ppf(0.5 + self.confidence / 2.0, df=n - 1)
        return float(t * sd / math.sqrt(n))

    def is_converged(self) -> bool:
        """Pure convergence check: has the mean's CI tightened enough?

        This is the *single* definition of convergence — the procedure
        both stops on it (via :meth:`should_stop`) and reports it, so
        the two can never disagree.  A zero mean (where a relative
        tolerance is undefined) counts as converged exactly when the
        runs carry no dispersion at all.
        """
        if len(self.values) < 2:
            return False
        mean = self.mean()
        half = self.half_width()
        if mean == 0.0:
            return half == 0.0
        return half / abs(mean) <= self.rel_tol

    def should_stop(self) -> bool:
        """Stopping rule: enough runs and (converged or capped out)."""
        n = len(self.values)
        if n < self.min_runs:
            return False
        if self.max_runs is not None and n >= self.max_runs:
            return True
        return self.is_converged()

    def converged(self) -> bool:
        """Backwards-compatible alias for :meth:`should_stop`."""
        return self.should_stop()
