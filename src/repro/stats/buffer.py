"""Growable numpy sample buffers.

Per-request metric accumulation used to go through Python lists and a
full ``np.asarray`` copy at every report.  :class:`FloatBuffer` keeps
the samples in a numpy array from the start — amortized O(1) appends
into a doubling backing store, and :meth:`array` returns a zero-copy
view, so repeated reporting is allocation-light.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FloatBuffer"]


class FloatBuffer:
    """An append-only float array with amortized-O(1) growth."""

    __slots__ = ("_data", "_n")

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._data = np.empty(capacity, dtype=float)
        self._n = 0

    def append(self, value: float) -> None:
        data = self._data
        n = self._n
        if n == len(data):
            grown = np.empty(2 * len(data), dtype=float)
            grown[:n] = data
            self._data = data = grown
        data[n] = value
        self._n = n + 1

    def extend(self, values) -> None:
        arr = np.asarray(values, dtype=float)
        need = self._n + arr.size
        data = self._data
        if need > len(data):
            cap = len(data)
            while cap < need:
                cap *= 2
            grown = np.empty(cap, dtype=float)
            grown[: self._n] = data[: self._n]
            self._data = data = grown
        data[self._n : need] = arr
        self._n = need

    def __len__(self) -> int:
        return self._n

    def array(self) -> np.ndarray:
        """Zero-copy view of the samples appended so far.

        The view aliases the backing store: it stays valid and cheap
        for read-side consumers, but appending may reallocate, so
        callers that need a stable snapshot should copy.
        """
        return self._data[: self._n]
