"""Descriptive summaries of latency samples, with honest uncertainty.

A compact building block used by reports and notebooks: one call turns
a raw latency array into the numbers a systems paper reports — moments,
coefficient of variation, a quantile ladder with distribution-free
confidence intervals, and the tail ratio (p99/p50) that signals how
queueing-dominated the distribution is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from .quantile import order_statistic_ci

__all__ = ["LatencySummary", "summarize"]

DEFAULT_QUANTILES = (0.5, 0.9, 0.95, 0.99, 0.999)


@dataclass
class LatencySummary:
    """Descriptive statistics of one latency sample."""

    n: int
    mean_us: float
    std_us: float
    cv: float
    min_us: float
    max_us: float
    quantiles_us: Dict[float, float]
    #: Distribution-free CIs per quantile (lower, upper).
    quantile_cis: Dict[float, Tuple[float, float]]

    @property
    def tail_ratio(self) -> float:
        """p99 over p50 — >4-5 signals queueing-dominated latency."""
        p50 = self.quantiles_us.get(0.5)
        p99 = self.quantiles_us.get(0.99)
        if p50 is None or p99 is None or p50 == 0:
            return float("nan")
        return p99 / p50

    def render(self) -> str:
        lines = [
            f"n={self.n}  mean={self.mean_us:.1f} us  sd={self.std_us:.1f}  "
            f"cv={self.cv:.2f}  range=[{self.min_us:.1f}, {self.max_us:.1f}]"
        ]
        for q in sorted(self.quantiles_us):
            lo, hi = self.quantile_cis[q]
            lines.append(
                f"  p{100 * q:g}: {self.quantiles_us[q]:9.1f} us  "
                f"(95% CI {lo:.1f}..{hi:.1f})"
            )
        ratio = self.tail_ratio
        if ratio == ratio:  # not NaN
            lines.append(f"  tail ratio p99/p50: {ratio:.2f}")
        return "\n".join(lines)


def summarize(
    samples: Sequence[float],
    quantiles: Sequence[float] = DEFAULT_QUANTILES,
    confidence: float = 0.95,
) -> LatencySummary:
    """Summarize a latency sample (microseconds)."""
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("samples must be a non-empty 1-D array")
    if not quantiles:
        raise ValueError("need at least one quantile")
    qs = sorted(set(float(q) for q in quantiles))
    for q in qs:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile {q} outside (0, 1)")
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return LatencySummary(
        n=int(arr.size),
        mean_us=mean,
        std_us=std,
        cv=std / mean if mean > 0 else float("nan"),
        min_us=float(arr.min()),
        max_us=float(arr.max()),
        quantiles_us={q: float(np.quantile(arr, q)) for q in qs},
        quantile_cis={
            q: order_statistic_ci(arr, q, confidence=confidence) for q in qs
        },
    )
