"""Quantile regression (Koenker) via linear programming.

The paper's attribution engine (Section IV-A): estimate coefficients
``c_i(tau)`` of Equation 1 by minimizing the pinball loss, which
weights underestimates by ``tau`` and overestimates by ``1 - tau``
(Equation 4).  Unlike ANOVA this makes no normality assumption and
targets *any* quantile, which is what tail-latency attribution needs.

Two solvers are provided:

* ``method="lp"`` — the classical primal LP::

      min_{b, u, v}  tau * 1'u + (1 - tau) * 1'v
      s.t.           X b + u - v = y,   u, v >= 0

  solved with HiGHS through :func:`scipy.optimize.linprog` on sparse
  matrices.  Exact for any design matrix.

* ``method="saturated"`` — a fast exact path for saturated designs
  (the paper's full 2^4 model with all interactions): the conditional
  tau-quantile of each design cell is the cell's empirical
  tau-quantile, and the coefficients follow from one 16x16 solve.
  Orders of magnitude faster on large sample sets; used automatically
  when applicable under ``method="auto"``.

Degenerate dummy designs can trap LP solvers at non-unique vertices;
the paper perturbs the data with 0.01-sd symmetric noise before
fitting.  :func:`fit_quantile_regression` exposes the same knob
(``perturb_sd``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

__all__ = ["QuantRegResult", "fit_quantile_regression", "pinball_loss", "predict"]


def pinball_loss(y: np.ndarray, pred: np.ndarray, tau: float) -> float:
    """Mean pinball (check) loss at quantile ``tau`` (Equation 4)."""
    if not 0.0 < tau < 1.0:
        raise ValueError("tau must be in (0, 1)")
    err = np.asarray(y, dtype=float) - np.asarray(pred, dtype=float)
    return float(np.mean(np.where(err >= 0, tau * err, (tau - 1.0) * err)))


@dataclass
class QuantRegResult:
    """Fit result for one quantile ``tau``."""

    tau: float
    coefficients: np.ndarray
    columns: List[str]
    loss: float
    method: str
    #: Filled in by repro.stats.inference when requested.
    stderr: Optional[np.ndarray] = None
    p_values: Optional[np.ndarray] = None

    def coef(self, name: str) -> float:
        """Coefficient by column name (e.g. ``"numa:turbo"``)."""
        try:
            return float(self.coefficients[self.columns.index(name)])
        except ValueError:
            raise KeyError(f"no model term {name!r}; have {self.columns}") from None

    def as_dict(self) -> Dict[str, float]:
        return dict(zip(self.columns, map(float, self.coefficients)))

    def predict(self, X: np.ndarray) -> np.ndarray:
        return predict(X, self.coefficients)


def predict(X: np.ndarray, coefficients: np.ndarray) -> np.ndarray:
    """Model prediction ``X @ b`` with shape validation."""
    X = np.asarray(X, dtype=float)
    b = np.asarray(coefficients, dtype=float)
    if X.ndim != 2 or X.shape[1] != b.size:
        raise ValueError(f"X shape {X.shape} incompatible with {b.size} coefficients")
    return X @ b


def _weighted_quantile(values: np.ndarray, weights: np.ndarray, tau: float) -> float:
    """tau-quantile of a weighted sample (inverse weighted CDF)."""
    order = np.argsort(values)
    v = values[order]
    w = weights[order]
    cum = np.cumsum(w)
    target = tau * cum[-1]
    idx = int(np.searchsorted(cum, target, side="left"))
    return float(v[min(idx, v.size - 1)])


def _fit_saturated(
    X: np.ndarray, y: np.ndarray, tau: float, weights: np.ndarray
) -> Optional[np.ndarray]:
    """Exact fit when the design is saturated; None when not applicable.

    Saturated means: the number of distinct rows of X equals the number
    of columns and those rows are linearly independent, so the model
    can represent any per-cell quantile vector exactly.
    """
    uniq, inverse = np.unique(X, axis=0, return_inverse=True)
    p = X.shape[1]
    if uniq.shape[0] != p:
        return None
    if np.linalg.matrix_rank(uniq) < p:
        return None
    cell_q = np.empty(p)
    for cell in range(p):
        mask = inverse == cell
        cell_q[cell] = _weighted_quantile(y[mask], weights[mask], tau)
    return np.linalg.solve(uniq, cell_q)


def _fit_lp(
    X: np.ndarray, y: np.ndarray, tau: float, weights: np.ndarray
) -> np.ndarray:
    """Primal LP with HiGHS on sparse matrices."""
    n, p = X.shape
    c = np.concatenate([np.zeros(p), tau * weights, (1.0 - tau) * weights])
    eye = sparse.identity(n, format="csc")
    A_eq = sparse.hstack([sparse.csc_matrix(X), eye, -eye], format="csc")
    bounds = [(None, None)] * p + [(0, None)] * (2 * n)
    res = linprog(c, A_eq=A_eq, b_eq=y, bounds=bounds, method="highs")
    if not res.success:  # pragma: no cover - HiGHS is robust on feasible LPs
        raise RuntimeError(f"quantile regression LP failed: {res.message}")
    return res.x[:p]


def fit_quantile_regression(
    X: np.ndarray,
    y: Sequence[float],
    tau: float,
    columns: Optional[Sequence[str]] = None,
    weights: Optional[Sequence[float]] = None,
    method: str = "auto",
    perturb_sd: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> QuantRegResult:
    """Fit one quantile-regression model.

    Parameters
    ----------
    X:
        Design matrix (n, p); build it with
        :func:`repro.stats.design.model_matrix`.
    y:
        Response samples (latencies, microseconds).
    tau:
        Target quantile in (0, 1).
    columns:
        Column names for reporting; defaults to ``x0..x{p-1}``.
    weights:
        Optional per-sample weights (e.g. from histogram compression).
    method:
        ``"auto"`` (saturated fast path when applicable, else LP),
        ``"saturated"`` (error if not applicable) or ``"lp"``.
    perturb_sd:
        Std-dev of symmetric noise added to ``y`` before fitting — the
        paper's anti-degeneracy trick for all-dummy designs.  Applied
        relative to nothing (absolute microseconds), matching the
        paper's "symmetric variance at 0.01 standard deviation".
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    if y.ndim != 1 or y.size != X.shape[0]:
        raise ValueError(f"y length {y.size} != X rows {X.shape[0]}")
    if y.size == 0:
        raise ValueError("cannot fit on an empty sample")
    if not 0.0 < tau < 1.0:
        raise ValueError("tau must be in (0, 1)")
    if columns is not None and len(columns) != X.shape[1]:
        raise ValueError("columns length must match X's column count")
    w = (
        np.ones(y.size)
        if weights is None
        else np.asarray(weights, dtype=float)
    )
    if w.shape != y.shape or (w < 0).any():
        raise ValueError("weights must be non-negative and match y's shape")

    if perturb_sd > 0.0:
        if rng is None:
            rng = np.random.default_rng(0)
        y = y + rng.normal(0.0, perturb_sd, size=y.size)

    beta = None
    used = method
    if method in ("auto", "saturated"):
        beta = _fit_saturated(X, y, tau, w)
        if beta is None:
            if method == "saturated":
                raise ValueError(
                    "design is not saturated (distinct rows != columns); "
                    "use method='lp'"
                )
            used = "lp"
        else:
            used = "saturated"
    if beta is None:
        if method not in ("auto", "lp"):
            raise ValueError(f"unknown method {method!r}")
        beta = _fit_lp(X, y, tau, w)
        used = "lp"

    cols = list(columns) if columns is not None else [f"x{i}" for i in range(X.shape[1])]
    loss = pinball_loss(y, X @ beta, tau)
    return QuantRegResult(tau=tau, coefficients=beta, columns=cols, loss=loss, method=used)
