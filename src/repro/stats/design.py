"""Two-level full-factorial experiment design (the paper's Table III).

The attribution methodology measures every permutation of the factor
levels ("2-level full factorial experiment design with the 4 factors"),
randomizing the order of experiments to preserve independence, and then
fits a quantile-regression model whose terms are the factors *and all
their interactions* (Equation 1).

This module provides:

* :class:`Factor` / :class:`FactorialDesign` — the design itself:
  enumerate the 2^k configurations, code levels as 0/1 dummies, and
  produce a randomized experiment schedule with replications.
* :func:`model_matrix` — expand coded runs into the regression design
  matrix with intercept, main effects, and interaction columns named
  exactly like the paper's Table IV rows (``numa``, ``numa:turbo``,
  ``numa:turbo:dvfs:nic``, ...).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Factor", "FactorialDesign", "model_matrix", "interaction_names"]


@dataclass(frozen=True)
class Factor:
    """One two-level factor: a name plus its low/high level labels.

    The paper's Table III, e.g.
    ``Factor("numa", low="same-node", high="interleave")``.
    """

    name: str
    low: str
    high: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("factor name must be non-empty")
        if self.low == self.high:
            raise ValueError(f"factor {self.name!r} has identical levels")

    def label(self, coded: int) -> str:
        """Level label for a coded value (0 = low, 1 = high)."""
        if coded not in (0, 1):
            raise ValueError(f"coded level must be 0 or 1, got {coded!r}")
        return self.high if coded else self.low

    def code(self, label: str) -> int:
        """Coded value for a level label."""
        if label == self.low:
            return 0
        if label == self.high:
            return 1
        raise ValueError(
            f"{label!r} is not a level of factor {self.name!r} "
            f"(levels: {self.low!r}, {self.high!r})"
        )


class FactorialDesign:
    """A 2^k full-factorial design over the given factors."""

    def __init__(self, factors: Sequence[Factor]):
        if not factors:
            raise ValueError("need at least one factor")
        names = [f.name for f in factors]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate factor names in {names}")
        self.factors: List[Factor] = list(factors)

    @property
    def names(self) -> List[str]:
        return [f.name for f in self.factors]

    @property
    def num_configs(self) -> int:
        return 2 ** len(self.factors)

    def configs(self) -> List[Tuple[int, ...]]:
        """All 2^k coded configurations, lexicographic in factor order."""
        return list(itertools.product((0, 1), repeat=len(self.factors)))

    def config_dict(self, coded: Sequence[int]) -> Dict[str, str]:
        """Translate a coded configuration into level labels."""
        if len(coded) != len(self.factors):
            raise ValueError(
                f"config length {len(coded)} != {len(self.factors)} factors"
            )
        return {f.name: f.label(c) for f, c in zip(self.factors, coded)}

    def config_label(self, coded: Sequence[int]) -> str:
        """Compact label like ``numa-low,turbo-high,...`` (Figs. 7/9)."""
        return ",".join(
            f"{f.name}-{'high' if c else 'low'}"
            for f, c in zip(self.factors, coded)
        )

    def schedule(
        self,
        replications: int,
        rng: np.random.Generator,
    ) -> List[Tuple[int, ...]]:
        """Randomized run order with ``replications`` per configuration.

        The paper: "We randomly choose one permutation of the
        configurations for each experiment to preserve independence
        among experiments, until we have at least 30 experiments for
        each permutation."  A shuffled replicated list realizes the
        same marginal design while guaranteeing balance.
        """
        if replications < 1:
            raise ValueError("replications must be >= 1")
        runs = [cfg for cfg in self.configs() for _ in range(replications)]
        perm = rng.permutation(len(runs))
        return [runs[i] for i in perm]


def interaction_names(names: Sequence[str], max_order: Optional[int] = None) -> List[str]:
    """All model term names: main effects then interactions by order.

    Matches the row order of the paper's Table IV: ``numa``, ...,
    ``numa:turbo``, ..., ``numa:turbo:dvfs:nic``.
    """
    k = len(names)
    if max_order is None:
        max_order = k
    if not 1 <= max_order <= k:
        raise ValueError(f"max_order must be in [1, {k}]")
    terms: List[str] = []
    for order in range(1, max_order + 1):
        for combo in itertools.combinations(range(k), order):
            terms.append(":".join(names[i] for i in combo))
    return terms


def model_matrix(
    coded_runs: Sequence[Sequence[int]],
    names: Sequence[str],
    max_order: Optional[int] = None,
) -> Tuple[np.ndarray, List[str]]:
    """Expand coded 0/1 runs into the regression design matrix.

    Returns ``(X, columns)`` where ``X`` has an intercept column of
    ones followed by one column per term of :func:`interaction_names`
    (interaction columns are products of the member factors, exactly
    Equation 1's ``x1*x2`` terms), and ``columns`` lists
    ``["(Intercept)", "numa", ..., "numa:turbo:dvfs:nic"]``.
    """
    runs = np.asarray(coded_runs, dtype=float)
    if runs.ndim != 2 or runs.shape[1] != len(names):
        raise ValueError(
            f"coded_runs must be (n, {len(names)}), got {runs.shape}"
        )
    if runs.size and not np.isin(runs, (0.0, 1.0)).all():
        raise ValueError("coded runs must contain only 0/1 levels")
    terms = interaction_names(names, max_order)
    cols = [np.ones(runs.shape[0])]
    index = {n: i for i, n in enumerate(names)}
    for term in terms:
        members = term.split(":")
        col = np.ones(runs.shape[0])
        for m in members:
            col = col * runs[:, index[m]]
        cols.append(col)
    X = np.column_stack(cols) if cols else np.empty((0, 0))
    return X, ["(Intercept)"] + terms
