"""Closed-form queueing theory used to validate the simulator.

The paper leans on queueing results twice: Finding 1 cites the M/M/1
variance of the number of outstanding requests (``rho / (1 - rho)^2``),
and the whole open-loop argument is that the offered process must
exercise the server's true queueing behaviour.  This module provides
the classical formulas so tests can check the discrete-event substrate
against theory on configurations where theory is exact:

* M/M/1: sojourn-time distribution is exponential with rate
  ``mu - lambda``, so every quantile is closed-form.
* M/G/1: Pollaczek-Khinchine mean waiting time.
* M/M/c (Erlang-C): waiting probability and mean wait, for multi-core
  sanity checks.

All times are in the same unit as the service time supplied.
"""

from __future__ import annotations

import math

__all__ = [
    "mm1_utilization",
    "mm1_mean_sojourn",
    "mm1_sojourn_quantile",
    "mm1_outstanding_mean",
    "mm1_outstanding_variance",
    "mg1_mean_wait",
    "erlang_c",
    "mmc_mean_wait",
]


def _check_stability(rho: float) -> None:
    if not 0.0 <= rho < 1.0:
        raise ValueError(f"utilization must be in [0, 1) for a stable queue, got {rho}")


def mm1_utilization(arrival_rate: float, service_time: float) -> float:
    """rho = lambda * E[S]."""
    if arrival_rate < 0 or service_time <= 0:
        raise ValueError("need arrival_rate >= 0 and service_time > 0")
    return arrival_rate * service_time


def mm1_mean_sojourn(arrival_rate: float, service_time: float) -> float:
    """E[T] = E[S] / (1 - rho)."""
    rho = mm1_utilization(arrival_rate, service_time)
    _check_stability(rho)
    return service_time / (1.0 - rho)


def mm1_sojourn_quantile(arrival_rate: float, service_time: float, q: float) -> float:
    """The q-quantile of the M/M/1 sojourn time.

    Sojourn is exponential with mean ``E[S]/(1-rho)``, so
    ``T_q = -ln(1-q) * E[T]`` — e.g. p99 is ``ln(100) ~ 4.6`` times the
    mean, the heavy-tail rule of thumb behind the paper's Finding 1.
    """
    if not 0.0 <= q < 1.0:
        raise ValueError("q must be in [0, 1)")
    return -math.log(1.0 - q) * mm1_mean_sojourn(arrival_rate, service_time)


def mm1_outstanding_mean(rho: float) -> float:
    """E[N] = rho / (1 - rho)."""
    _check_stability(rho)
    return rho / (1.0 - rho)


def mm1_outstanding_variance(rho: float) -> float:
    """Var[N] = rho / (1 - rho)^2 — the formula Finding 1 cites."""
    _check_stability(rho)
    return rho / (1.0 - rho) ** 2


def mg1_mean_wait(arrival_rate: float, service_time: float, service_cv2: float) -> float:
    """Pollaczek-Khinchine: E[W] = rho (1 + cv^2) E[S] / (2 (1 - rho)).

    ``service_cv2`` is the squared coefficient of variation of the
    service time (1 for exponential, 0 for deterministic).
    """
    if service_cv2 < 0:
        raise ValueError("service_cv2 must be non-negative")
    rho = mm1_utilization(arrival_rate, service_time)
    _check_stability(rho)
    return rho * (1.0 + service_cv2) * service_time / (2.0 * (1.0 - rho))


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C probability that an arrival must wait (M/M/c).

    ``offered_load`` is ``lambda * E[S]`` in erlangs; stability requires
    ``offered_load < servers``.
    """
    if servers < 1:
        raise ValueError("servers must be >= 1")
    if not 0.0 <= offered_load < servers:
        raise ValueError("need 0 <= offered_load < servers for stability")
    if offered_load == 0.0:
        return 0.0
    # Sum via the standard numerically stable recurrence.
    inv_b = 1.0  # Erlang-B inverse for k = 0
    for k in range(1, servers + 1):
        inv_b = 1.0 + inv_b * k / offered_load
    erlang_b = 1.0 / inv_b
    rho = offered_load / servers
    return erlang_b / (1.0 - rho + rho * erlang_b)


def mmc_mean_wait(servers: int, arrival_rate: float, service_time: float) -> float:
    """Mean waiting time in M/M/c: ``C(c, a) * E[S] / (c - a)``."""
    offered = arrival_rate * service_time
    pw = erlang_c(servers, offered)
    return pw * service_time / (servers - offered)
