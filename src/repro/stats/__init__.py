"""Statistics substrate: adaptive histograms, quantile estimation,
convergence rules, factorial designs, quantile regression, and the
paper's pseudo-R-squared / bootstrap inference."""

from .histogram import AdaptiveHistogram
from .quantile import (
    bootstrap_quantile_ci,
    order_statistic_ci,
    quantile,
    quantile_density,
    quantile_stderr,
    quantiles,
)
from .convergence import MeanConvergence, RunningQuantileTracker
from .design import Factor, FactorialDesign, interaction_names, model_matrix
from .quantreg import QuantRegResult, fit_quantile_regression, pinball_loss, predict
from .queueing import (
    erlang_c,
    mg1_mean_wait,
    mm1_mean_sojourn,
    mm1_outstanding_mean,
    mm1_outstanding_variance,
    mm1_sojourn_quantile,
    mm1_utilization,
    mmc_mean_wait,
)
from .summary import LatencySummary, summarize
from .inference import (
    ExperimentSample,
    expand_design,
    run_quantile_design,
    fit_with_inference,
    pseudo_r2,
    screen_factor,
)

__all__ = [
    "AdaptiveHistogram",
    "bootstrap_quantile_ci",
    "order_statistic_ci",
    "quantile",
    "quantile_density",
    "quantile_stderr",
    "quantiles",
    "MeanConvergence",
    "RunningQuantileTracker",
    "Factor",
    "FactorialDesign",
    "interaction_names",
    "model_matrix",
    "QuantRegResult",
    "fit_quantile_regression",
    "pinball_loss",
    "predict",
    "erlang_c",
    "mg1_mean_wait",
    "mm1_mean_sojourn",
    "mm1_outstanding_mean",
    "mm1_outstanding_variance",
    "mm1_sojourn_quantile",
    "mm1_utilization",
    "mmc_mean_wait",
    "LatencySummary",
    "summarize",
    "ExperimentSample",
    "expand_design",
    "run_quantile_design",
    "fit_with_inference",
    "pseudo_r2",
    "screen_factor",
]
