"""Quantile estimation and confidence intervals.

The paper's evaluation turns entirely on high quantiles (p95, p99,
p99.9) of latency distributions, so this module centralizes how they
are estimated and how uncertain those estimates are:

* :func:`quantile` / :func:`quantiles` — point estimates on raw
  samples (inverted-CDF with interpolation, numpy's default).
* :func:`order_statistic_ci` — a distribution-free confidence interval
  from the binomial distribution of order statistics; this is the
  statistically safe way to put error bars on a p99 without assuming
  normality (Section IV's critique of ANOVA's assumptions applies to
  naive CIs too).
* :func:`bootstrap_quantile_ci` — percentile-bootstrap interval, used
  where the order-statistic interval is too conservative for small
  samples.
* :func:`quantile_density` — kernel estimate of the density at a
  quantile; the paper's Finding 2 notes the variance of a quantile
  estimate is inversely proportional to the density there.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np
from scipy import stats as _scipy_stats

__all__ = [
    "quantile",
    "quantiles",
    "order_statistic_ci",
    "bootstrap_quantile_ci",
    "quantile_density",
    "quantile_stderr",
]


def _validate(samples: np.ndarray, q: float) -> np.ndarray:
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("samples must be a non-empty 1-D array")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    return arr


def quantile(samples: Sequence[float], q: float) -> float:
    """Point estimate of the ``q``-quantile."""
    arr = _validate(np.asarray(samples), q)
    return float(np.quantile(arr, q))


def quantiles(samples: Sequence[float], qs: Sequence[float]) -> np.ndarray:
    """Vectorized point estimates for several quantiles."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("samples must be non-empty")
    return np.quantile(arr, np.asarray(qs, dtype=float))


def order_statistic_ci(
    samples: Sequence[float], q: float, confidence: float = 0.95
) -> Tuple[float, float]:
    """Distribution-free CI for the ``q``-quantile via order statistics.

    The number of samples below the true quantile is Binomial(n, q);
    inverting that gives ranks (l, u) such that
    ``P(x_(l) <= Q_q <= x_(u)) >= confidence`` with no distributional
    assumptions at all.
    """
    arr = np.sort(_validate(np.asarray(samples), q))
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    n = arr.size
    alpha = 1.0 - confidence
    lo_rank = int(_scipy_stats.binom.ppf(alpha / 2.0, n, q))
    hi_rank = int(_scipy_stats.binom.ppf(1.0 - alpha / 2.0, n, q))
    lo_rank = max(0, min(lo_rank, n - 1))
    hi_rank = max(0, min(hi_rank, n - 1))
    return float(arr[lo_rank]), float(arr[hi_rank])


def bootstrap_quantile_ci(
    samples: Sequence[float],
    q: float,
    confidence: float = 0.95,
    n_boot: int = 1000,
    rng: np.random.Generator = None,
) -> Tuple[float, float]:
    """Percentile-bootstrap CI for the ``q``-quantile."""
    arr = _validate(np.asarray(samples), q)
    if rng is None:
        rng = np.random.default_rng(0)
    n = arr.size
    idx = rng.integers(0, n, size=(n_boot, n))
    boots = np.quantile(arr[idx], q, axis=1)
    alpha = 1.0 - confidence
    return (
        float(np.quantile(boots, alpha / 2.0)),
        float(np.quantile(boots, 1.0 - alpha / 2.0)),
    )


def quantile_density(samples: Sequence[float], q: float) -> float:
    """Kernel estimate of the latency density at the ``q``-quantile.

    Uses a Gaussian KDE with Silverman bandwidth.  Degenerate inputs
    (all samples equal) return ``inf`` — the quantile there is known
    exactly.
    """
    arr = _validate(np.asarray(samples), q)
    point = np.quantile(arr, q)
    sd = arr.std(ddof=1) if arr.size > 1 else 0.0
    if sd == 0.0:
        return math.inf
    kde = _scipy_stats.gaussian_kde(arr)
    return float(kde(point)[0])


def quantile_stderr(samples: Sequence[float], q: float) -> float:
    """Asymptotic standard error of the ``q``-quantile estimate.

    ``se = sqrt(q (1-q) / n) / f(Q_q)`` — the classical result the
    paper's Finding 2 invokes: variance is inversely proportional to
    the density at the quantile, which is tiny in the tail, hence the
    growing standard errors at p99 in Table IV.
    """
    arr = _validate(np.asarray(samples), q)
    dens = quantile_density(arr, q)
    if math.isinf(dens):
        return 0.0
    return math.sqrt(q * (1.0 - q) / arr.size) / dens
