"""Faban (the Sun/Oracle workload-creation framework), as surveyed.

Faban's driver framework is an explicitly **closed** workload model:
each simulated user executes operations in a think-time loop (its
documentation is written in terms of "users" and negative-exponential
think times).  The paper's Table I accordingly marks it closed-loop
and non-robust to hysteresis, but — being a framework designed for
multi-machine rigs — it does scale out its drivers, so client-side
queueing is not its weakness.

Model: several driver clients, each a closed loop of "users" with
exponential think times sized so the *offered* rate matches the
target when the server is fast (``users / (think + latency) ~ rate``),
saturating closed-loop style when it is not.
"""

from __future__ import annotations

from ..core.bench import TestBench
from ..core.controllers import ClosedLoopController
from ..sim.machine import ClientSpec
from .base import BaselineLoadTester

__all__ = ["FabanTester", "FABAN_DRIVER_SPEC"]

#: Java driver agents; heavier than mutilate, lighter than one big JVM.
FABAN_DRIVER_SPEC = ClientSpec(tx_cpu_us=2.0, rx_cpu_us=2.0)


class FabanTester(BaselineLoadTester):
    """Multi-driver closed-loop tester with think-time users."""

    tool = "faban"

    def __init__(
        self,
        bench: TestBench,
        total_rate_rps: float,
        measurement_samples: int = 10_000,
        warmup_samples: int = 200,
        drivers: int = 4,
        users_per_driver: int = 32,
        expected_latency_us: float = 150.0,
        client_spec: ClientSpec = FABAN_DRIVER_SPEC,
    ):
        super().__init__(bench, total_rate_rps, measurement_samples, warmup_samples)
        if drivers < 1 or users_per_driver < 1:
            raise ValueError("drivers and users_per_driver must be >= 1")
        self.drivers = drivers
        self.users_per_driver = users_per_driver
        total_users = drivers * users_per_driver
        # users / (think + latency) = rate  =>  think sizing.
        cycle_us = total_users * 1e6 / total_rate_rps
        think_us = max(0.0, cycle_us - expected_latency_us)
        for i in range(drivers):
            client = self._add_client(f"faban-driver{i}", client_spec)
            conns = bench.open_connections(users_per_driver)
            client.controller = ClosedLoopController(
                bench.sim,
                self._make_send(client),
                conns,
                bench.rng.stream(f"faban/driver{i}/think"),
                think_time_us=think_us,
            )

    @property
    def max_outstanding(self) -> int:
        return self.drivers * self.users_per_driver
