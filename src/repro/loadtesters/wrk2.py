"""A wrk2-style constant-throughput tester (post-paper comparison).

wrk2 (Gil Tene's fork of wrk) postdates the tools the paper surveys
and fixes their most famous flaw — *coordinated omission*: it keeps a
constant-throughput schedule of **intended** send times and measures
latency from the intended time, so a stalled connection cannot hide
queueing delay by simply not sending.

Included here as an instructive near-miss baseline:

* **open-loop intended schedule** — like Treadmill, wrk2 gets the
  queueing model right in expectation;
* **deterministic pacing** — unlike Treadmill, its schedule is a
  metronome (constant gaps), not a Poisson process.  Production
  arrivals are Poisson-like (the paper cites Google's measurements),
  and constant gaps offer the server a *less variable* arrival stream,
  so wrk2 mildly underestimates the tail that exponential arrivals
  would produce.  The `test_ablation_deterministic_arrivals_undershoot`
  benchmark quantifies this.

The connection-level mechanics reuse the open-loop controller with a
:class:`~repro.core.arrival.DeterministicArrivals` process; latency is
measured from the *intended* send time (``t_user_send`` is stamped at
issue time in our client model, which is exactly the coordinated-
omission-free convention).
"""

from __future__ import annotations

from ..core.arrival import DeterministicArrivals
from ..core.bench import TestBench
from ..core.controllers import OpenLoopController
from ..sim.machine import ClientSpec
from .base import BaselineLoadTester

__all__ = ["Wrk2Tester", "WRK2_CLIENT_SPEC"]

#: Lean C event loop; comparable to Treadmill's footprint.
WRK2_CLIENT_SPEC = ClientSpec(tx_cpu_us=0.8, rx_cpu_us=0.8)


class Wrk2Tester(BaselineLoadTester):
    """Constant-throughput open-loop tester (coordinated-omission-free,
    but metronome-paced)."""

    tool = "wrk2"

    def __init__(
        self,
        bench: TestBench,
        total_rate_rps: float,
        measurement_samples: int = 10_000,
        warmup_samples: int = 200,
        clients: int = 4,
        connections_per_client: int = 8,
        client_spec: ClientSpec = WRK2_CLIENT_SPEC,
    ):
        super().__init__(bench, total_rate_rps, measurement_samples, warmup_samples)
        if clients < 1 or connections_per_client < 1:
            raise ValueError("clients and connections_per_client must be >= 1")
        self.clients_count = clients
        rate_per_client = total_rate_rps / clients
        for i in range(clients):
            client = self._add_client(f"wrk2-{i}", client_spec)
            conns = bench.open_connections(connections_per_client)
            client.controller = OpenLoopController(
                bench.sim,
                DeterministicArrivals(rate_per_client),
                self._make_send(client),
                conns,
                bench.rng.stream(f"wrk2/{i}/arrivals"),
            )

    @property
    def coordinated_omission_free(self) -> bool:
        """Latency is measured from the intended send time: a slow
        response delays nothing in the schedule and hides nothing in
        the measurement."""
        return True
