"""Mutilate (Leverich & Kozyrakis), as surveyed by the paper.

What the paper observed:

* **Closed-loop control** (Section II-A, Table I): each connection
  only issues its next request after the previous response arrives, so
  the number of outstanding requests is structurally capped and the
  measured tail *under*-estimates the open-loop ground truth by more
  than 2x at 80% utilization (Fig. 6).
* **Master + 8 agents**: client-side queueing is largely avoided (the
  paper runs it as instructed with 8 agent machines), so the bias is
  the controller, not client saturation.
* Its own user-level measurement still sits above its own tcpdump
  curve and "fails to capture the shape of the ground truth
  distribution" at 10% load (Fig. 5) — per-request client overhead
  plus cross-thread handoff jitter.

Model: N agent clients, each with a closed-loop controller over C
connections paced toward the target rate, a modest per-request CPU
cost, and pooled (master-side) sample aggregation.
"""

from __future__ import annotations

from ..core.bench import TestBench
from ..core.controllers import ClosedLoopController
from ..sim.machine import ClientSpec
from .base import BaselineLoadTester

__all__ = ["MutilateTester", "MUTILATE_AGENT_SPEC"]

#: Efficient C++ agents, but response handling crosses a thread
#: boundary before timestamps are taken.
MUTILATE_AGENT_SPEC = ClientSpec(tx_cpu_us=1.0, rx_cpu_us=2.2)


class MutilateTester(BaselineLoadTester):
    """Multi-agent closed-loop tester (the controller pitfall)."""

    tool = "mutilate"

    def __init__(
        self,
        bench: TestBench,
        total_rate_rps: float,
        measurement_samples: int = 10_000,
        warmup_samples: int = 200,
        agents: int = 8,
        connections_per_agent: int = 4,
        client_spec: ClientSpec = MUTILATE_AGENT_SPEC,
    ):
        super().__init__(bench, total_rate_rps, measurement_samples, warmup_samples)
        if agents < 1 or connections_per_agent < 1:
            raise ValueError("agents and connections_per_agent must be >= 1")
        self.agents = agents
        self.connections_per_agent = connections_per_agent
        rate_per_agent = total_rate_rps / agents
        for i in range(agents):
            client = self._add_client(f"mutilate-agent{i}", client_spec)
            conns = bench.open_connections(connections_per_agent)
            client.controller = ClosedLoopController(
                bench.sim,
                self._make_send(client),
                conns,
                bench.rng.stream(f"mutilate/agent{i}/think"),
                target_rate_rps=rate_per_agent,
            )

    @property
    def max_outstanding(self) -> int:
        """The structural in-flight cap the closed loop imposes."""
        return self.agents * self.connections_per_agent
