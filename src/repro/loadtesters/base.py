"""Shared machinery for the baseline (pitfall) load testers.

Each baseline models one of the tools the paper surveys — CloudSuite,
Mutilate, YCSB, Faban — with the control loop, client footprint, and
aggregation behaviour *that tool actually has*, flaws included.  They
expose the same ``start / stop / done / report`` surface as
:class:`~repro.core.treadmill.TreadmillInstance` so experiments can put
them on the same :class:`~repro.core.bench.TestBench` and compare
against ground truth, exactly like the paper's Figs. 5-6.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.bench import TestBench
from ..sim.machine import ClientMachine, ClientSpec
from ..workloads.base import Request

__all__ = ["BaselineReport", "BaselineClient", "BaselineLoadTester"]


@dataclass
class BaselineReport:
    """What a baseline tool reports after a run.

    ``reported_samples`` are the latencies *as the tool would report
    them* (pooled across its clients, quantized by its histogram, etc.
    — tool-specific bias included).  ``samples_by_client`` and
    ``ground_truth_samples`` are kept for analysis.
    """

    tool: str
    reported_samples: np.ndarray
    samples_by_client: Dict[str, np.ndarray]
    ground_truth_samples: np.ndarray
    client_utilizations: Dict[str, float]
    requests_sent: int

    def quantile(self, q: float) -> float:
        """The tool's own estimate of a latency quantile."""
        return float(np.quantile(self.reported_samples, q))

    def ground_truth_quantile(self, q: float) -> float:
        return float(np.quantile(self.ground_truth_samples, q))


class BaselineClient:
    """One client process of a baseline tool: machine + sample sink."""

    def __init__(self, tester: "BaselineLoadTester", machine: ClientMachine):
        self.tester = tester
        self.machine = machine
        machine.response_handler = self._on_response
        self.samples: List[float] = []
        self.controller = None  # installed by the tester subclass
        self._warmup_left = tester.warmup_samples

    def _on_response(self, request: Request) -> None:
        if self.controller is not None:
            self.controller.on_response(request.conn_id)
        if self._warmup_left > 0:
            self._warmup_left -= 1
            return
        self.samples.append(request.user_latency_us)
        self.tester._on_sample()


class BaselineLoadTester(abc.ABC):
    """Base class: owns clients, counts samples, assembles the report."""

    #: Tool name (subclasses override).
    tool = "baseline"

    def __init__(
        self,
        bench: TestBench,
        total_rate_rps: float,
        measurement_samples: int,
        warmup_samples: int = 200,
    ):
        if total_rate_rps <= 0:
            raise ValueError("total_rate_rps must be positive")
        if measurement_samples < 1:
            raise ValueError("measurement_samples must be >= 1")
        self.bench = bench
        self.total_rate_rps = total_rate_rps
        self.measurement_samples = measurement_samples
        self.warmup_samples = warmup_samples
        self.clients: List[BaselineClient] = []
        self._collected = 0
        self._req_counter = 0
        self._workload = bench.config.workload
        self._rng = bench.rng.stream(f"{self.tool}/requests")

    # ------------------------------------------------------------------
    # plumbing shared by subclasses
    # ------------------------------------------------------------------
    def _add_client(
        self, name: str, spec: ClientSpec, rack: Optional[str] = None
    ) -> BaselineClient:
        machine = self.bench.add_client(name, rack=rack, client_spec=spec)
        client = BaselineClient(self, machine)
        self.clients.append(client)
        return client

    def _make_send(self, client: BaselineClient):
        def send(conn_id: int) -> None:
            request = self._workload.sample_request(
                self._rng, self._req_counter, conn_id
            )
            self._req_counter += 1
            client.machine.issue(request)

        return send

    def _on_sample(self) -> None:
        self._collected += 1

    # ------------------------------------------------------------------
    # the Treadmill-compatible lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        for client in self.clients:
            client.controller.start()

    def stop(self) -> None:
        for client in self.clients:
            client.controller.stop()

    @property
    def done(self) -> bool:
        return self._collected >= self.measurement_samples

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def _pooled_samples(self) -> np.ndarray:
        """Default tool behaviour: pool all clients' samples (the
        aggregation pitfall; subclasses may quantize further)."""
        parts = [np.asarray(c.samples, dtype=float) for c in self.clients]
        return np.concatenate(parts) if parts else np.empty(0)

    def _reported_samples(self) -> np.ndarray:
        """Hook: what the tool's own output would contain."""
        return self._pooled_samples()

    def report(self) -> BaselineReport:
        samples_by_client = {
            c.machine.name: np.asarray(c.samples, dtype=float) for c in self.clients
        }
        gt_parts = [
            c.machine.capture.samples()
            for c in self.clients
            if c.machine.capture is not None
        ]
        return BaselineReport(
            tool=self.tool,
            reported_samples=self._reported_samples(),
            samples_by_client=samples_by_client,
            ground_truth_samples=(
                np.concatenate(gt_parts) if gt_parts else np.empty(0)
            ),
            client_utilizations={
                c.machine.name: c.machine.utilization() for c in self.clients
            },
            requests_sent=sum(c.controller.sent for c in self.clients),
        )
