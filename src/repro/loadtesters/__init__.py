"""Baseline (pitfall) load testers the paper surveys and compares
against: CloudSuite, Mutilate, YCSB, and Faban — each modelled with the
control loop, client footprint, and aggregation behaviour of the real
tool, flaws included."""

from .base import BaselineClient, BaselineLoadTester, BaselineReport
from .cloudsuite import CLOUDSUITE_CLIENT_SPEC, CloudSuiteTester
from .faban import FABAN_DRIVER_SPEC, FabanTester
from .features import FEATURES, TOOLS, feature_matrix, render_feature_table
from .mutilate import MUTILATE_AGENT_SPEC, MutilateTester
from .wrk2 import WRK2_CLIENT_SPEC, Wrk2Tester
from .ycsb import YCSB_CLIENT_SPEC, YcsbTester

__all__ = [
    "BaselineClient",
    "BaselineLoadTester",
    "BaselineReport",
    "CLOUDSUITE_CLIENT_SPEC",
    "CloudSuiteTester",
    "FABAN_DRIVER_SPEC",
    "FabanTester",
    "FEATURES",
    "TOOLS",
    "feature_matrix",
    "render_feature_table",
    "MUTILATE_AGENT_SPEC",
    "MutilateTester",
    "YCSB_CLIENT_SPEC",
    "YcsbTester",
    "WRK2_CLIENT_SPEC",
    "Wrk2Tester",
]
