"""CloudSuite's Data Caching load generator, as surveyed by the paper.

What the paper observed (Section III-C, Fig. 5):

* It runs a **single client machine**, whose per-request cost is high
  enough that even 100 kRPS (10% *server* utilization) drives the
  client to ~90% utilization — heavy client-side queueing that made
  CloudSuite "measure a drastically higher tail latency" than ground
  truth.
* At 800 kRPS it "is not efficient enough to saturate the server"
  at all (Fig. 6 omits it).
* Its inter-arrival generation is open-loop (its ground-truth tcpdump
  distribution matched Treadmill's in Fig. 5), so the flaw is purely
  the client bottleneck, not the controller.

Model: one client with ~9 us/request of generator-thread CPU, an
open-loop Poisson schedule, and pooled sample reporting.
"""

from __future__ import annotations

from ..core.arrival import PoissonArrivals
from ..core.bench import TestBench
from ..core.controllers import OpenLoopController
from ..sim.machine import ClientSpec
from .base import BaselineLoadTester

__all__ = ["CloudSuiteTester", "CLOUDSUITE_CLIENT_SPEC"]

#: Java-based loader on one machine: ~11.6 us of client CPU per request,
#: i.e. a hard capacity of ~86 kRPS -- comfortably above the 10%-load
#: point, far below the 80% one (Fig. 6 omits CloudSuite for exactly
#: this reason).
CLOUDSUITE_CLIENT_SPEC = ClientSpec(tx_cpu_us=5.8, rx_cpu_us=5.8)


class CloudSuiteTester(BaselineLoadTester):
    """Single-client open-loop tester with a low client capacity."""

    tool = "cloudsuite"

    def __init__(
        self,
        bench: TestBench,
        total_rate_rps: float,
        measurement_samples: int = 10_000,
        warmup_samples: int = 200,
        connections: int = 8,
        client_spec: ClientSpec = CLOUDSUITE_CLIENT_SPEC,
    ):
        super().__init__(bench, total_rate_rps, measurement_samples, warmup_samples)
        client = self._add_client("cloudsuite0", client_spec)
        conns = bench.open_connections(connections)
        client.controller = OpenLoopController(
            bench.sim,
            PoissonArrivals(total_rate_rps),
            self._make_send(client),
            conns,
            bench.rng.stream("cloudsuite/arrivals"),
        )

    @property
    def saturated(self) -> bool:
        """True when the offered rate exceeds the single client's
        capacity — the regime where CloudSuite cannot run the test."""
        return self.total_rate_rps > self.clients[0].machine.spec.capacity_rps
