"""Table I: the load-tester feature matrix.

The paper summarizes its survey in a five-row matrix: which tools
handle query inter-arrival generation, statistical aggregation,
client-side queueing bias, performance hysteresis, and generality
correctly.  The assignments below follow the paper's text:

* inter-arrival: "many load testers are implemented as closed-loop
  controller[s] ... including Faban, YCSB and Mutilate" — so only
  CloudSuite (whose ground-truth distribution matched Treadmill's in
  Fig. 5, i.e. it offered open-loop load) and Treadmill pass;
* statistical aggregation: static histograms and pooled-distribution
  merging bias every tool except Mutilate (which keeps raw samples on
  its agents) and Treadmill (adaptive histogram, per-instance metric
  aggregation);
* client-side queueing: "YCSB and CloudSuite suffer from such bias due
  to their single client configuration" — the multi-machine tools
  (Faban, Mutilate, Treadmill) pass;
* performance hysteresis: "none of the existing load testers is robust
  enough to handle this scenario" — only Treadmill's repeated-run
  procedure passes;
* generality: the workload-framework tools (YCSB bindings, Faban
  drivers, Treadmill plug-ins) pass; CloudSuite's loader and Mutilate
  are memcached-specific.

``Treadmill-live`` is this reproduction's wall-clock measurement
backend (:mod:`repro.live`): the same open-loop procedure pointed at a
real network endpoint instead of the simulator.  It inherits every
row — the arrival streams, histogram aggregation, multi-client fan-out
and repeat-until-converged loop are shared code, and its echo/HTTP
protocols keep it workload-agnostic.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["FEATURES", "TOOLS", "feature_matrix", "render_feature_table"]

TOOLS: List[str] = [
    "YCSB",
    "Faban",
    "CloudSuite",
    "Mutilate",
    "Treadmill",
    "Treadmill-live",
]

FEATURES: Dict[str, Dict[str, bool]] = {
    "Query Interarrival Generation": {
        "YCSB": False,
        "Faban": False,
        "CloudSuite": True,
        "Mutilate": False,
        "Treadmill": True,
        "Treadmill-live": True,
    },
    "Statistical Aggregation": {
        "YCSB": False,
        "Faban": False,
        "CloudSuite": False,
        "Mutilate": True,
        "Treadmill": True,
        "Treadmill-live": True,
    },
    "Client-side Queueing Bias": {
        "YCSB": False,
        "Faban": True,
        "CloudSuite": False,
        "Mutilate": True,
        "Treadmill": True,
        "Treadmill-live": True,
    },
    "Performance Hysteresis": {
        "YCSB": False,
        "Faban": False,
        "CloudSuite": False,
        "Mutilate": False,
        "Treadmill": True,
        "Treadmill-live": True,
    },
    "Generality": {
        "YCSB": True,
        "Faban": True,
        "CloudSuite": False,
        "Mutilate": False,
        "Treadmill": True,
        "Treadmill-live": True,
    },
}


def feature_matrix() -> Dict[str, Dict[str, bool]]:
    """A defensive copy of the Table I matrix."""
    return {row: dict(cols) for row, cols in FEATURES.items()}


def render_feature_table() -> str:
    """Render Table I as aligned text (checkmark = handled correctly)."""
    name_width = max(len(row) for row in FEATURES)
    col_width = max(len(t) for t in TOOLS) + 2
    header = " " * name_width + "".join(t.rjust(col_width) for t in TOOLS)
    lines = [header]
    for row, cols in FEATURES.items():
        cells = "".join(
            ("yes" if cols[t] else "-").rjust(col_width) for t in TOOLS
        )
        lines.append(row.ljust(name_width) + cells)
    return "\n".join(lines)
