"""Wire protocol for the distributed executor (coordinator ⇄ worker).

Transport: a single TCP connection per worker carrying *length-prefixed
pickle frames* — a 4-byte big-endian unsigned length followed by that
many payload bytes.  Frames above :data:`MAX_FRAME` are rejected before
allocation, and a short read raises :class:`ProtocolError` (half a
frame is indistinguishable from a dead peer, so the connection is
abandoned and the coordinator's lease machinery requeues the work).

Every message is a plain dict with a ``"type"`` key.  The conversation
is strictly request/response, worker-driven:

==========  =================  ============================================
direction   type               meaning
==========  =================  ============================================
w → c       ``hello``          handshake: protocol/library/schema versions
c → w       ``welcome``        versions compatible, start pulling
c → w       ``reject``         incompatible versions / bad message
w → c       ``get``            give me work
c → w       ``task``           lease: ``task_id``, ``digest``, ``spec``,
                               ``task_ref`` (``module:qualname``),
                               ``lease_s``
c → w       ``wait``           no work right now; poll again in ``poll_s``
c → w       ``shutdown``       drain and exit
w → c       ``result``         completed lease: ``task_id``, ``digest``,
                               ``result``, ``wall_s``
w → c       ``error``          task raised: ``task_id``, ``digest``,
                               ``error`` (repr), ``traceback``
c → w       ``ack``            result accepted (or deduplicated)
==========  =================  ============================================

The handshake pins three versions: :data:`PROTOCOL_VERSION` (this wire
format), the library version, and the spec schema
(:data:`~repro.exec.spec.SPEC_SCHEMA`).  A worker built against a
different spec schema would compute different digests for the same
content, silently poisoning the digest-keyed dedup — so mismatches are
rejected at connect time, not discovered at merge time.

Pickle is the serialization because specs already guarantee pickle
round-trip fidelity (see ``tests/test_exec.py``) and workers are
*trusted* — this protocol targets lab clusters behind a firewall, the
deployment the paper's methodology assumes, not the open internet.
"""

from __future__ import annotations

import io
import pickle
import socket
import struct
from typing import Dict, Optional

from .spec import SPEC_SCHEMA

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME",
    "ProtocolError",
    "FrameTooLarge",
    "send_frame",
    "recv_frame",
    "send_msg",
    "recv_msg",
    "hello",
    "handshake_reply",
    "task_reference",
    "resolve_task",
]

#: Bump on any incompatible change to framing or message fields.
PROTOCOL_VERSION = 1

#: Upper bound on one frame (64 MiB): a RunResult with kept raw samples
#: is a few MB; anything near this bound indicates a corrupt length
#: prefix, not a legitimate payload.
MAX_FRAME = 64 * 1024 * 1024

_LEN = struct.Struct("!I")


class ProtocolError(RuntimeError):
    """The peer violated the framing or message contract."""


class FrameTooLarge(ProtocolError):
    """A declared frame length exceeded :data:`MAX_FRAME`."""


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, payload: bytes, fault: Optional[str] = None) -> None:
    """Write one length-prefixed frame (atomic via ``sendall``).

    ``fault`` is the deterministic fault-injection hook used by
    :mod:`repro.faults` — a no-op (``None``) in production:

    * ``"drop_frame"`` — the frame is silently not sent; the caller is
      expected to abandon the connection, modelling a frame lost to a
      dying link (TCP would eventually reset it).
    * ``"truncate_frame"`` — the length prefix and *half* the payload
      are sent, then nothing; the peer's ``recv_frame`` raises
      :class:`ProtocolError` mid-frame, exercising the torn-frame
      abandon/requeue path.
    """
    if len(payload) > MAX_FRAME:
        raise FrameTooLarge(
            f"refusing to send {len(payload)} byte frame (max {MAX_FRAME})"
        )
    if fault == "drop_frame":
        return
    if fault == "truncate_frame":
        sock.sendall(_LEN.pack(len(payload)) + payload[: max(1, len(payload) // 2)])
        return
    sock.sendall(_LEN.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; None on clean EOF at a frame boundary."""
    buf = io.BytesIO()
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if buf.tell() == 0:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({buf.tell()}/{n} bytes)"
            )
        buf.write(chunk)
        remaining -= len(chunk)
    return buf.getvalue()


def recv_frame(sock: socket.socket) -> Optional[bytes]:
    """Read one frame; ``None`` on clean EOF before a length prefix."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise FrameTooLarge(
            f"peer declared a {length} byte frame (max {MAX_FRAME})"
        )
    if length == 0:
        return b""
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed between length prefix and body")
    return body


# ----------------------------------------------------------------------
# messages
# ----------------------------------------------------------------------
def send_msg(
    sock: socket.socket, msg: Dict[str, object], fault: Optional[str] = None
) -> None:
    """Pickle and send one message dict (``fault``: see :func:`send_frame`)."""
    send_frame(sock, pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL), fault=fault)


def recv_msg(sock: socket.socket) -> Optional[Dict[str, object]]:
    """Receive one message dict; ``None`` on clean EOF."""
    frame = recv_frame(sock)
    if frame is None:
        return None
    try:
        msg = pickle.loads(frame)
    except Exception as err:
        raise ProtocolError(f"undecodable frame: {err!r}") from err
    if not isinstance(msg, dict) or "type" not in msg:
        raise ProtocolError(f"malformed message (no type): {msg!r}")
    return msg


# ----------------------------------------------------------------------
# task references
# ----------------------------------------------------------------------
def task_reference(task: object) -> str:
    """The ``module:qualname`` reference under which workers import ``task``.

    Task *code* is never shipped over the wire — only this reference —
    so coordinator and worker must run the same library version, which
    the handshake enforces.
    """
    module = getattr(task, "__module__", None)
    qualname = getattr(task, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        raise ValueError(
            f"task {task!r} has no stable import reference "
            "(lambdas/locals cannot run on remote workers)"
        )
    return f"{module}:{qualname}"


def resolve_task(ref: str):
    """Import the callable named by a ``module:qualname`` reference."""
    import importlib

    module_name, _, qualname = ref.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"malformed task reference {ref!r}")
    obj: object = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise TypeError(f"task reference {ref!r} is not callable")
    return obj


# ----------------------------------------------------------------------
# handshake helpers
# ----------------------------------------------------------------------
def _library_version() -> str:
    try:
        from .. import __version__

        return __version__
    except Exception:  # pragma: no cover - defensive
        return "unknown"


def hello(worker: str) -> Dict[str, object]:
    """The worker's opening handshake message."""
    return {
        "type": "hello",
        "protocol": PROTOCOL_VERSION,
        "library": _library_version(),
        "spec_schema": SPEC_SCHEMA,
        "worker": worker,
    }


def handshake_reply(msg: Dict[str, object]) -> Dict[str, object]:
    """Validate a ``hello``; return the ``welcome`` or ``reject`` reply.

    Digest-keyed dedup is only sound when both sides agree on the spec
    schema, so a schema or protocol mismatch is fatal at connect time.
    """
    if msg.get("type") != "hello":
        return {"type": "reject", "reason": f"expected hello, got {msg.get('type')!r}"}
    if msg.get("protocol") != PROTOCOL_VERSION:
        return {
            "type": "reject",
            "reason": (
                f"protocol version mismatch: coordinator={PROTOCOL_VERSION}, "
                f"worker={msg.get('protocol')}"
            ),
        }
    if msg.get("spec_schema") != SPEC_SCHEMA:
        return {
            "type": "reject",
            "reason": (
                f"spec schema mismatch: coordinator={SPEC_SCHEMA}, "
                f"worker={msg.get('spec_schema')} — digests would not be comparable"
            ),
        }
    return {
        "type": "welcome",
        "protocol": PROTOCOL_VERSION,
        "library": _library_version(),
        "spec_schema": SPEC_SCHEMA,
    }
