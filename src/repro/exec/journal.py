"""Crash-recoverable run journal (append-only JSONL).

The cluster executor's determinism contract (equal spec ⇒ equal
result) makes *restart* cheap in principle: any spec whose result is
already in the content-addressed cache never needs to run again.  What
a crashed coordinator loses is the *bookkeeping* — which batch was in
flight, which digests completed, which were still outstanding.  The
:class:`RunJournal` persists exactly that bookkeeping as an
append-only JSONL file:

    {"ev": "begin", "batch": "<id>", "digests": [...], "t": ...}
    {"ev": "issued", "batch": "<id>", "digest": "...", "t": ...}
    {"ev": "done",   "batch": "<id>", "digest": "...", "t": ...}
    {"ev": "end",    "batch": "<id>", "t": ...}

Records are flushed per write, so the journal survives ``kill -9`` of
the coordinator process at any instant; a torn final line (the crash
landed mid-write) is ignored on replay.  Payloads are *not* journaled
— the :class:`~repro.exec.cache.ResultCache` is the payload store —
so the journal stays tiny (a digest per line) and recovery is
"re-open the journal, skip every ``done`` digest whose payload the
cache still holds, re-run the rest".

Used by :class:`~repro.exec.distributed.ClusterExecutor` when
``ClusterOptions.journal_path`` is set, and by the chaos harness's
``coordinator_restart`` fault to prove that a restarted batch re-runs
*only* unfinished specs.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

__all__ = ["RunJournal"]


class RunJournal:
    """Append-only JSONL log of issued/completed spec digests.

    Parameters
    ----------
    path:
        Journal file (created on demand; parent directories too).
    fsync:
        When True, ``os.fsync`` after every record — survives machine
        power loss, not just process death.  Default False (flush
        only), which is what the chaos tests exercise.
    """

    def __init__(self, path: os.PathLike, fsync: bool = False):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self._fh = open(self.path, "a", encoding="utf-8")
        self.records_written = 0

    # -- writing -------------------------------------------------------
    def _write(self, record: Dict[str, object]) -> None:
        record.setdefault("t", time.time())
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self.records_written += 1

    def begin_batch(self, digests: Sequence[str], batch_id: Optional[str] = None) -> str:
        """Open a batch; returns its id (generated when not given)."""
        batch_id = batch_id or uuid.uuid4().hex[:12]
        self._write({"ev": "begin", "batch": batch_id, "digests": list(digests)})
        return batch_id

    def record_issued(self, batch_id: str, digest: str) -> None:
        self._write({"ev": "issued", "batch": batch_id, "digest": digest})

    def record_done(self, batch_id: str, digest: str) -> None:
        self._write({"ev": "done", "batch": batch_id, "digest": digest})

    def end_batch(self, batch_id: str) -> None:
        self._write({"ev": "end", "batch": batch_id})

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- replay --------------------------------------------------------
    @staticmethod
    def replay(path: os.PathLike) -> List[Dict[str, object]]:
        """Parse every intact record; a torn final line is ignored.

        A torn line *anywhere but the end* indicates real corruption
        and raises ``ValueError`` — the journal is append-only, so the
        only legitimate tear is the crash-interrupted last write.
        """
        path = Path(path)
        if not path.exists():
            return []
        records: List[Dict[str, object]] = []
        torn_at: Optional[int] = None
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                if torn_at is not None:
                    raise ValueError(
                        f"journal {path} corrupt: undecodable record at "
                        f"line {torn_at} followed by more records"
                    )
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    torn_at = lineno  # fatal only if not the last line
        return records

    def completed_digests(self) -> Set[str]:
        """Digests with a ``done`` record anywhere in the journal."""
        self._fh.flush()
        return {
            str(r["digest"])
            for r in self.replay(self.path)
            if r.get("ev") == "done" and r.get("digest")
        }

    def open_batches(self) -> Dict[str, Set[str]]:
        """Unfinished batches: id -> outstanding (not-done) digests.

        ``done`` is digest-global, not batch-local: a restarted
        coordinator re-runs the outstanding work under a *new* batch
        id, and its completions must settle the crashed batch's books
        too (results are content-addressed; the batch id is only a
        grouping key).
        """
        pending: Dict[str, Set[str]] = {}
        for record in self.replay(self.path):
            ev = record.get("ev")
            batch = str(record.get("batch", ""))
            if ev == "begin":
                pending[batch] = {str(d) for d in record.get("digests", [])}
            elif ev == "done":
                digest = str(record.get("digest", ""))
                for outstanding in pending.values():
                    outstanding.discard(digest)
            elif ev == "end":
                pending.pop(batch, None)
        return {b: d for b, d in pending.items() if d}
