"""The formal Executor API: protocol, capabilities, and the registry.

This module is the *contract* between experiment drivers (procedure,
attribution, sweeps, capacity) and execution backends.  Drivers talk
to one verb::

    executor.run(specs, progress=None) -> list of results (ordered)

and backends promise one invariant: because the task is a pure
function of its spec, **equal specs produce bit-identical results on
every backend** — serial, process pool, or a distributed cluster.

Three pieces live here:

* :class:`Executor` — a :class:`typing.Protocol` (structural, so
  third-party backends need not inherit anything) with the ``run``
  verb, a :meth:`~Executor.capabilities` self-description, and a
  context-manager lifecycle;
* :class:`Capabilities` — a frozen self-description every backend
  returns, so callers can introspect (``distributed``, ``parallel``,
  worker counts) without ``isinstance`` checks against concrete
  classes;
* the **backend registry** — ``register_backend`` /
  ``available_backends`` / :func:`make_executor`, which maps a stable
  string name (``"serial"``, ``"process"``, ``"cluster"``, plus any
  third-party registrations) and a per-backend *options dataclass*
  to a live executor.  SSH or k8s fan-outs later plug in here
  without touching any driver.

The pre-registry spelling ``make_executor(jobs=N, **pool_kwargs)``
keeps working but emits a :class:`DeprecationWarning`; new code names
the backend::

    make_executor("process", options=ProcessOptions(workers=8))
    make_executor("cluster", workers=3)          # option kwargs inline
    make_executor("serial", cache_dir="~/.cache/repro")

See ``src/repro/exec/API.md`` for the implementer-facing contract.
"""

from __future__ import annotations

import dataclasses
import os
import warnings
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Type,
    runtime_checkable,
)

from ..measure.api import measure_spec
from .cache import ResultCache
from .progress import ProgressHook

__all__ = [
    "Capabilities",
    "Executor",
    "BackendInfo",
    "SerialOptions",
    "ProcessOptions",
    "ClusterOptions",
    "RetryPolicy",
    "HealthPolicy",
    "register_backend",
    "available_backends",
    "backend_info",
    "make_executor",
]


# ----------------------------------------------------------------------
# capabilities & protocol
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Capabilities:
    """A backend's self-description (introspection without isinstance).

    ``deterministic`` is not optional-in-spirit: every backend in this
    library guarantees equal spec ⇒ bit-identical result.  A backend
    that cannot promise that must say so here, and drivers may refuse
    it for cacheable work.
    """

    #: Registry name of the backend ("serial", "process", "cluster", ...).
    backend: str
    #: Runs more than one spec at a time.
    parallel: bool = False
    #: Crosses a machine/process boundary over a network transport.
    distributed: bool = False
    #: Equal spec ⇒ bit-identical result (the caching contract).
    deterministic: bool = True
    #: Worker slots, when the backend knows (None for serial/unbounded).
    workers: Optional[int] = None
    #: Honors a per-task wall-clock budget.
    supports_timeout: bool = False
    #: Re-attempts crashed/lost tasks.
    supports_retry: bool = False


@runtime_checkable
class Executor(Protocol):
    """Structural interface every execution backend satisfies.

    Backends are context managers; ``close()`` must be idempotent and
    ``run()`` must be callable repeatedly on one executor (drivers
    probe convergence with incremental batches).
    """

    def run(
        self,
        specs: Sequence[object],
        progress: Optional[ProgressHook] = None,
    ) -> List[object]:
        """Execute ``specs``; return results in submission order."""
        ...

    def capabilities(self) -> Capabilities:
        """Static self-description of this backend instance."""
        ...

    def close(self) -> None:
        """Release pools/sockets/workers (idempotent)."""
        ...

    def __enter__(self) -> "Executor": ...

    def __exit__(self, *exc: object) -> None: ...


# ----------------------------------------------------------------------
# per-backend option dataclasses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SerialOptions:
    """The serial backend has no knobs (the reference semantics)."""


@dataclass(frozen=True)
class ProcessOptions:
    """Options for the in-machine process-pool backend."""

    #: Worker processes (default: ``os.cpu_count()``).
    workers: Optional[int] = None
    #: Per-task wall-clock budget in seconds (None: unlimited).
    timeout: Optional[float] = None
    #: Re-attempts for crashed/timed-out tasks.
    retries: int = 1
    #: Submission bound (default ``2 x workers``).
    max_inflight: Optional[int] = None


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget + backoff for *transient* task failures.

    Lost work (crashed workers, expired leases, digest mismatches) and
    transient worker exceptions (``MemoryError``, ``OSError``, pickling
    transport errors) are re-attempted under this budget; genuine task
    exceptions are never retried (a pure function of the spec fails
    the same way every time).

    Backoff is exponential with *decorrelated jitter* (Brooker, AWS
    Architecture Blog): ``delay = min(cap, uniform(base, prev * 3))``,
    drawn from a seeded RNG so the schedule is deterministic for a
    given seed — chaos runs are replayable.
    """

    #: Attempts per spec before the batch fails (>= 1).
    max_attempts: int = 3
    #: First backoff delay, seconds (0 disables backoff entirely).
    backoff_base_s: float = 0.05
    #: Backoff ceiling, seconds.
    backoff_cap_s: float = 2.0
    #: Seed for the jitter RNG (delays are deterministic per seed).
    jitter_seed: int = 0


@dataclass(frozen=True)
class HealthPolicy:
    """Per-worker health scoring and circuit breaking.

    A worker accumulates one strike per attributed failure (expired
    lease, digest-mismatched result, transient task error).  At
    ``trip_after`` consecutive strikes the breaker opens and the
    worker is *quarantined* — it receives ``wait`` instead of tasks —
    until ``cooldown_s`` elapses, after which it is put on probation
    (half-open): one more strike re-trips immediately, one accepted
    result closes the breaker and clears the strikes.
    """

    #: Consecutive strikes that open a worker's breaker (0 disables).
    trip_after: int = 3
    #: Quarantine duration, seconds.
    cooldown_s: float = 5.0
    #: Healthy (connected, non-quarantined) worker floor; when the
    #: cluster stays below it for ``degrade_after_s``, the executor
    #: falls back to the local process backend for the remaining specs
    #: instead of stalling.  0 disables degradation.
    min_healthy_workers: int = 0
    #: Grace period below the floor before degrading, seconds.
    degrade_after_s: float = 5.0


@dataclass(frozen=True)
class ClusterOptions:
    """Options for the socket-based work-stealing cluster backend."""

    #: Local worker processes to spawn (LocalClusterExecutor); for a
    #: bare coordinator awaiting external ``repro-worker`` processes
    #: use :class:`~repro.exec.distributed.ClusterExecutor` directly.
    workers: int = 2
    #: Interface the coordinator binds.
    host: str = "127.0.0.1"
    #: TCP port (0: pick an ephemeral port).
    port: int = 0
    #: Lease seconds before an issued task is presumed lost and requeued.
    lease_s: float = 60.0
    #: Give up on a spec after this many failed/lost attempts.
    max_attempts: int = 3
    #: Speculatively re-issue straggling leased tasks to idle workers
    #: (safe: equal spec ⇒ equal result, duplicates are discarded).
    steal: bool = True
    #: Idle-worker polling interval, seconds.
    poll_s: float = 0.05
    #: Retry budget + backoff for transient failures.  ``max_attempts``
    #: above remains the lost-work bound; this policy's own
    #: ``max_attempts`` bounds *transient task errors* and its backoff
    #: paces every requeue.
    retry: RetryPolicy = RetryPolicy()
    #: Worker circuit breaking + graceful-degradation floor.
    health: HealthPolicy = HealthPolicy()
    #: Append-only JSONL run journal enabling coordinator-restart
    #: recovery (None: no journal).
    journal_path: Optional[str] = None
    #: Deterministic fault-injection plan (``repro.faults.FaultPlan``)
    #: threaded through every hook point; None in production.
    fault_plan: Optional[object] = None


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
#: factory(options, task, cache) -> Executor
BackendFactory = Callable[[object, Callable[[object], object], Optional[ResultCache]], Executor]


@dataclass(frozen=True)
class BackendInfo:
    """One registry entry."""

    name: str
    factory: BackendFactory
    options: Type[object]
    summary: str = ""


_REGISTRY: Dict[str, BackendInfo] = {}

#: Built-in backends are registered lazily by importing their module,
#: so `import repro.exec.api` alone stays cheap and cycle-free.
_BUILTIN_MODULES: Dict[str, str] = {
    "serial": "repro.exec.executors",
    "process": "repro.exec.executors",
    "cluster": "repro.exec.distributed",
}


def register_backend(
    name: str,
    factory: BackendFactory,
    options: Type[object] = SerialOptions,
    summary: str = "",
) -> None:
    """Register (or re-register) an executor backend under ``name``.

    ``factory(options, task, cache)`` must return an object satisfying
    :class:`Executor`.  Third-party transports (SSH fan-out, k8s jobs)
    register here and instantly become reachable from every driver and
    from the CLI's ``--executor`` flag.
    """
    if not name or not isinstance(name, str):
        raise ValueError("backend name must be a non-empty string")
    if not dataclasses.is_dataclass(options):
        raise TypeError("options must be a dataclass type")
    _REGISTRY[name] = BackendInfo(
        name=name, factory=factory, options=options, summary=summary
    )


def _ensure_builtin(name: str) -> None:
    if name in _REGISTRY:
        return
    module = _BUILTIN_MODULES.get(name)
    if module is not None:
        import importlib

        importlib.import_module(module)


def available_backends() -> Tuple[str, ...]:
    """Names of every registered backend (built-ins always included)."""
    for name in _BUILTIN_MODULES:
        _ensure_builtin(name)
    return tuple(sorted(_REGISTRY))


def backend_info(name: str) -> BackendInfo:
    """The registry entry for ``name`` (imports built-ins on demand)."""
    _ensure_builtin(name)
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown executor backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        ) from None


def _options_for(info: BackendInfo, options: object, kwargs: Dict[str, object]) -> object:
    if options is not None:
        if kwargs:
            raise TypeError(
                "pass either an options dataclass or option kwargs, not both"
            )
        if not isinstance(options, info.options):
            raise TypeError(
                f"backend {info.name!r} expects {info.options.__name__}, "
                f"got {type(options).__name__}"
            )
        return options
    valid = {f.name for f in dataclasses.fields(info.options)}
    unknown = set(kwargs) - valid
    if unknown:
        raise TypeError(
            f"unknown option(s) {sorted(unknown)} for backend {info.name!r}; "
            f"valid: {sorted(valid)}"
        )
    return info.options(**kwargs)


def make_executor(
    backend: object = "serial",
    *,
    options: object = None,
    task: Callable[[object], object] = measure_spec,
    cache: Optional[ResultCache] = None,
    cache_dir: Optional[os.PathLike] = None,
    jobs: Optional[int] = None,
    **option_kwargs: object,
) -> Executor:
    """Build an executor from a registered backend name.

    New spelling::

        make_executor("process", options=ProcessOptions(workers=8))
        make_executor("cluster", workers=3, lease_s=30.0)

    Deprecated spelling (still honored, with a ``DeprecationWarning``)::

        make_executor(4)           # jobs as the first positional
        make_executor(jobs=4, timeout=60.0, retries=2)
    """
    # ---- legacy surface -------------------------------------------------
    if isinstance(backend, int):
        if jobs is not None:
            raise TypeError("pass jobs positionally or by keyword, not both")
        jobs, backend = backend, None
    if jobs is not None:
        warnings.warn(
            "make_executor(jobs=N, **pool_kwargs) is deprecated and will be "
            "removed in version 2.0; migrate to make_executor('serial') or "
            "make_executor('process', options=ProcessOptions(workers=N, ...)) "
            "(see exec/API.md, 'Deprecated surface')",
            DeprecationWarning,
            stacklevel=2,
        )
        if backend not in (None, "serial", "process"):
            raise TypeError("jobs= only applies to the serial/process backends")
        if jobs <= 1:
            backend, option_kwargs = "serial", {}
        else:
            backend = "process"
            option_kwargs = dict(option_kwargs)
            option_kwargs.setdefault("workers", jobs)
            # legacy kwarg names
            if "max_workers" in option_kwargs:
                option_kwargs["workers"] = option_kwargs.pop("max_workers")
    if not isinstance(backend, str):
        raise TypeError(f"backend must be a registry name, got {backend!r}")

    info = backend_info(backend)
    opts = _options_for(info, options, option_kwargs)
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)
    return info.factory(opts, task, cache)
