"""RunSpec: one independent experiment as a frozen, hashable value.

The paper's methodology is "many independent experiments, then
aggregate": repeated runs to defeat hysteresis (Fig. 4), >= 30
replications x 2^4 configurations for the factorial sweep (Table IV),
and one procedure per point in utilization sweeps.  Every one of those
experiments is fully described by the same small set of knobs — the
workload, the hardware factors, the offered load, the sample budget,
and the ``(seed, run_index)`` pair that makes it an *independent*
run.  :class:`RunSpec` captures exactly that description as an
immutable value with a stable content digest, so that

* executors (:mod:`repro.exec.executors`) can ship it to worker
  processes and run it anywhere — same spec, same result, bit for bit;
* the result cache (:mod:`repro.exec.cache`) can key completed runs by
  content, deduplicating identical configurations across benchmarks
  and CLI invocations; and
* schedulers can build the whole randomized factorial schedule up
  front and submit it at once instead of hand-rolling serial loops.

Execution itself lives behind the versioned
:class:`~repro.measure.api.MeasurementBackend` protocol:
:func:`repro.measure.measure_spec` reads ``spec.backend`` (absent or
``"sim"`` selects the historical virtual-time simulator) and routes to
the registered backend.  Every driver (procedure, attribution, sweeps,
capacity, experiment modules) ultimately funnels through that
dispatcher; the :func:`run_spec` name kept here is a deprecated alias
for it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.treadmill import InstanceReport
from ..sim.machine import HardwareSpec
from ..workloads.base import Workload

__all__ = [
    "SPEC_SCHEMA",
    "RunSpec",
    "RunResult",
    "run_spec",
    "metric_samples",
    "spec_digest",
    "result_fingerprint",
]

#: Bump when the meaning of a spec field (or the execution semantics
#: behind it) changes; invalidates every cached result.
#: 2: canonicalization audit — type-tagged dict keys (no 1-vs-"1"
#:    collisions, total sort order), ndarray dtype in the digest,
#:    bytes/set/frozenset support.
#: 3: vectorized hot path — Treadmill instances draw inter-arrival
#:    gaps, connection picks, and request parameters from dedicated
#:    per-purpose RNG streams (batched in pre-sampled blocks).  The
#:    stream split changes the sampled values once; results remain
#:    deterministic and block-size-invariant thereafter.
#: 4: partitionable kernel — three execution-semantics changes that
#:    make results independent of how the event heap is sharded:
#:    (a) spine delays draw from per-source-host streams instead of
#:    one shared stream, (b) instances stop their own controller from
#:    inside the final counted sample instead of at the drive loop's
#:    next poll, (c) scenario antagonists stop at a deterministic
#:    virtual instant (last completion + network lookahead) instead of
#:    at a poll boundary.  Measurement samples are unchanged; trailing
#:    request counts, utilizations, and event totals shift once.
SPEC_SCHEMA = 4


# ----------------------------------------------------------------------
# canonical serialization (the digest substrate)
# ----------------------------------------------------------------------
def _canonical_blob(obj: object) -> str:
    """Compact JSON of the canonical form (a total order over values)."""
    return json.dumps(_canonical(obj), sort_keys=True, separators=(",", ":"))


def _canonical(obj: object) -> object:
    """Convert ``obj`` into a JSON-serializable canonical form.

    The form is stable across processes, interpreter versions, and
    machines — the digest-keyed dedup of the distributed executor
    rides on this.  Audit notes:

    * no ``id()``/``hash()``-derived content anywhere;
    * floats are serialized with shortest-round-trip ``repr`` (exact
      and stable since CPython 3.1; ``nan``/``inf``/``-0.0`` all have
      fixed spellings), never as JSON numbers;
    * dict entries are ``[key, value]`` *pairs* sorted by the canonical
      JSON of the key — keys keep their type (``1`` and ``"1"`` cannot
      collide, and mixed-type keys sort totally, so insertion order
      can never leak into the digest);
    * ndarrays record their dtype (a float32 and float64 array with
      equal values are different experiments);
    * sets are sorted by canonical JSON (iteration order is
      hash-seed-dependent and must not leak in).
    """
    if obj is None or isinstance(obj, (str, bool, int)):
        return obj
    if isinstance(obj, float):
        return {"__float__": repr(obj)}
    if isinstance(obj, bytes):
        return {"__bytes__": obj.hex()}
    if isinstance(obj, np.generic):
        return _canonical(obj.item())
    if isinstance(obj, np.ndarray):
        return {
            "__ndarray__": [_canonical(x) for x in obj.tolist()],
            "dtype": str(obj.dtype),
        }
    if isinstance(obj, (list, tuple)):
        return [_canonical(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        return {
            "__set__": sorted(
                (_canonical(x) for x in obj),
                key=lambda c: json.dumps(c, sort_keys=True, separators=(",", ":")),
            )
        }
    if isinstance(obj, dict):
        pairs = [[_canonical(k), _canonical(v)] for k, v in obj.items()]
        pairs.sort(
            key=lambda kv: json.dumps(kv[0], sort_keys=True, separators=(",", ":"))
        )
        return {"__dict__": pairs}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        body = {
            f.name: _canonical(getattr(obj, f.name)) for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": type(obj).__qualname__, "fields": body}
    # Generic objects (workloads, distributions, operation mixes):
    # public instance state, sorted by attribute name.  Private
    # attributes are derived caches and excluded so equivalent
    # configurations digest equally.
    state = {
        k: _canonical(v)
        for k, v in sorted(vars(obj).items(), key=lambda kv: kv[0])
        if not k.startswith("_")
    }
    return {"__object__": type(obj).__qualname__, "state": state}


def spec_digest(obj: object) -> str:
    """Stable SHA-256 content digest of any canonicalizable object."""
    return hashlib.sha256(_canonical_blob(obj).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# the spec
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class RunSpec:
    """Complete description of one independent experiment.

    Exactly one of ``total_rate_rps`` / ``target_utilization`` must be
    set (mirroring :class:`~repro.core.procedure.ProcedureConfig`).
    ``(seed, run_index)`` select the independent random universe: the
    bench derives all per-run randomness from the pair, so equal specs
    produce bit-identical results in any process.
    """

    workload: Workload
    hardware: HardwareSpec = field(default_factory=HardwareSpec)
    total_rate_rps: Optional[float] = None
    target_utilization: Optional[float] = None
    num_instances: int = 4
    connections_per_instance: int = 16
    warmup_samples: int = 300
    measurement_samples_per_instance: int = 5_000
    quantiles: Tuple[float, ...] = (0.5, 0.95, 0.99)
    combine: str = "mean"
    keep_raw: bool = False
    seed: int = 0
    run_index: int = 0
    #: Free-form label surfaced by progress hooks (e.g. "util=0.70" or
    #: "cfg=(1,0,0,0) rep=3"); not part of the content digest.
    tag: str = ""
    #: Optional declarative scenario
    #: (:class:`repro.scenarios.schema.ScenarioSpec`).  When set, the
    #: spec describes one N-fleet x M-pool experiment and
    #: execution routes through the scenario runtime; the
    #: single-server load knobs above must stay unset (per-fleet loads
    #: live inside the scenario).  Excluded from the digest when None,
    #: so every pre-existing spec keeps its historical digest and cache
    #: entries survive.
    scenario: Optional[object] = None
    #: Measurement backend that executes this spec (a name from the
    #: :mod:`repro.measure` registry).  ``"sim"`` — the default — is
    #: the historical virtual-time simulator and is *excluded from the
    #: digest*, so every pre-existing spec keeps its digest and cache
    #: entries from earlier schema-3 runs still hit.  Non-default
    #: backends (e.g. ``"live"``) digest in: a wall-clock measurement
    #: and a simulation of the same knobs are different experiments.
    backend: str = "sim"
    #: Shard the simulation across this many sub-kernels advancing in
    #: conservative time windows (:mod:`repro.sim.partition`).  Every
    #: count — including 1 — is pinned bit-identical to the serial
    #: kernel (None), so this knob is a *how*, never a *what*: it is
    #: excluded from the content digest entirely, and cached results
    #: are shared across partition counts.  The scenario compiler
    #: auto-fills it from the rack topology when left None.
    partitions: Optional[int] = None

    def __post_init__(self) -> None:
        if self.scenario is None:
            if (self.total_rate_rps is None) == (self.target_utilization is None):
                raise ValueError(
                    "set exactly one of total_rate_rps / target_utilization"
                )
        elif self.total_rate_rps is not None or self.target_utilization is not None:
            raise ValueError(
                "scenario specs carry per-fleet loads; leave "
                "total_rate_rps / target_utilization unset"
            )
        if self.num_instances < 1:
            raise ValueError("num_instances must be >= 1")
        if self.measurement_samples_per_instance < 1:
            raise ValueError("measurement_samples_per_instance must be >= 1")
        if not self.backend or not isinstance(self.backend, str):
            raise ValueError("backend must be a non-empty measurement backend name")
        if self.partitions is not None and self.partitions < 1:
            raise ValueError("partitions must be >= 1 (or None for serial)")
        object.__setattr__(self, "quantiles", tuple(self.quantiles))

    # -- identity ------------------------------------------------------
    def digest(self) -> str:
        """Stable content digest.

        Excludes the cosmetic ``tag`` and the execution-strategy
        ``partitions`` knob (any partition count is bit-identical to
        serial, so it cannot be part of *what* is measured).
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            body = {
                f.name: _canonical(getattr(self, f.name))
                for f in dataclasses.fields(self)
                if f.name not in ("tag", "partitions")
                and not (f.name == "scenario" and self.scenario is None)
                and not (f.name == "backend" and self.backend == "sim")
            }
            body["__schema__"] = SPEC_SCHEMA
            blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
            cached = hashlib.sha256(blob.encode("utf-8")).hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached

    def __getstate__(self) -> Dict[str, object]:
        """Drop the memoized digest when pickled.

        A spec travels to remote workers by pickle; the receiving
        interpreter must *recompute* the digest from content rather
        than trust a cached hex carried inside the payload — that
        recompute-and-compare is exactly how version skew between
        coordinator and worker is detected.
        """
        state = dict(self.__dict__)
        state.pop("_digest", None)
        return state

    def __hash__(self) -> int:
        return hash(self.digest())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunSpec):
            return NotImplemented
        return self.digest() == other.digest()

    def replace(self, **changes: object) -> "RunSpec":
        """A copy with ``changes`` applied (fresh digest)."""
        return dataclasses.replace(self, **changes)

    def describe(self) -> Dict[str, object]:
        if self.scenario is not None:
            load = f"scenario={getattr(self.scenario, 'name', '?')}"
        elif self.total_rate_rps is not None:
            load = f"{self.total_rate_rps:.0f} rps"
        else:
            load = f"util={self.target_utilization:.2f}"
        desc = {
            "workload": self.workload.name,
            "load": load,
            "instances": self.num_instances,
            "samples": self.measurement_samples_per_instance,
            "seed": self.seed,
            "run_index": self.run_index,
            "digest": self.digest()[:12],
        }
        if self.backend != "sim":
            desc["backend"] = self.backend
        if self.partitions is not None:
            desc["partitions"] = self.partitions
        return desc


# ----------------------------------------------------------------------
# the result
# ----------------------------------------------------------------------
@dataclass
class RunResult:
    """One independent experiment (one server boot).

    This is the value cached by :mod:`repro.exec.cache` and returned
    by every executor; :mod:`repro.core.procedure` re-exports it under
    the same name for backwards compatibility.
    """

    run_index: int
    reports: List[InstanceReport]
    #: Sound per-run estimates: per-instance quantiles combined.
    metrics: Dict[float, float]
    server_utilization: float
    client_utilizations: Dict[str, float]
    #: Content digest of the spec that produced this result.
    spec_digest: str = ""
    #: Wall-clock seconds this run took to simulate.
    wall_s: float = 0.0
    #: Simulator events processed during the run (telemetry).
    events_processed: int = 0
    #: True when the result was served from the on-disk cache.
    from_cache: bool = False
    #: Scenario runs only: sound per-(fleet, pool) estimates, keyed by
    #: the grouping pair.  Empty for single-fleet legacy runs.
    group_metrics: Dict[Tuple[str, str], Dict[float, float]] = field(
        default_factory=dict
    )
    #: Validity audit (:class:`repro.guards.GuardReport`) attached by
    #: the measurement dispatcher — pass/warn/fail verdicts from the
    #: Treadmill §II pitfall detectors.  None for results produced (or
    #: cached) before the guard layer existed.
    guards: Optional[object] = None

    def ground_truth(self) -> np.ndarray:
        """Pooled NIC-level samples across instances (tcpdump view)."""
        parts = [r.ground_truth_samples for r in self.reports]
        return np.concatenate(parts) if parts else np.empty(0)

    def raw_samples(self) -> np.ndarray:
        """Pooled raw user-level samples (only if keep_raw was set)."""
        parts = [np.asarray(r.raw_samples) for r in self.reports]
        return np.concatenate(parts) if parts else np.empty(0)


def result_fingerprint(result: RunResult) -> str:
    """Byte-level identity of a result, modulo execution incidentals.

    SHA-256 over the pickled result with the fields that legitimately
    differ between identical experiments normalized away: wall-clock
    time, cache provenance, and the dispatcher-attached guard report.
    Everything else — every histogram count, every raw sample, every
    trailing request total, ``events_processed`` — participates, so
    two fingerprints are equal iff the runs are bit-identical.  This
    is the comparator behind the serial-vs-partitioned identity gates
    (tests, ``bench_sim`` ``outputs_identical``, partition chaos).

    Pickled with memoization disabled: the default memo encodes the
    object-*sharing* topology (which strings alias which), and that is
    an artifact of how a result was assembled, not of what it says —
    a merged multi-process result interns differently than a serial
    one.  The result graph is a tree, so no-memo pickling terminates.
    """
    import io
    import pickle

    normalized = dataclasses.replace(
        result, wall_s=0.0, from_cache=False, guards=None
    )
    buf = io.BytesIO()
    pickler = pickle.Pickler(buf, protocol=4)
    pickler.fast = True
    pickler.dump(normalized)
    return hashlib.sha256(buf.getvalue()).hexdigest()


# ----------------------------------------------------------------------
# execution primitive
# ----------------------------------------------------------------------
def metric_samples(report: InstanceReport) -> np.ndarray:
    """Per-instance latency view for metric extraction.

    Raw samples when kept (exact); otherwise the histogram is queried
    directly through a dense quantile grid, which preserves metric
    extraction accuracy to within a bin width.
    """
    raw = np.asarray(report.raw_samples, dtype=float)
    if raw.size:
        return raw
    qs = np.linspace(0.0005, 0.9995, 2000)
    return np.asarray(report.histogram.quantiles(qs))


def run_spec(spec: RunSpec) -> RunResult:
    """Deprecated alias for :func:`repro.measure.measure_spec`.

    The execution body moved behind the versioned MeasurementBackend
    protocol (:mod:`repro.measure.api`); the simulator semantics live
    in :mod:`repro.measure.simbackend`, bit-identical to the historical
    in-place body.  Use :func:`repro.run` (or ``measure_spec`` for the
    single-spec primitive) instead.
    """
    warnings.warn(
        "run_spec() is deprecated; use repro.run(spec) or "
        "repro.measure.measure_spec(spec) (see exec/API.md migration table)",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..measure.api import measure_spec

    return measure_spec(spec)
