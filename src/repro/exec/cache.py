"""Content-addressed on-disk result cache.

Five benchmark artifacts derive from the same factorial sweep, and
utilization sweeps re-probe the same (workload, util, seed) points
across CLI invocations — yet before this layer every invocation
re-simulated from scratch.  The cache keys completed
:class:`~repro.exec.spec.RunResult` values by the *content digest* of
the :class:`~repro.exec.spec.RunSpec` that produced them, so identical
experiments are simulated once per machine, ever.

Layout (one directory per entry, named by digest)::

    <root>/<dd>/<igest...>/
        meta.json      # version, digest, checksum, metrics, raw path
        outcome.pkl    # the full pickled RunResult
        raw.npy        # pooled raw latency samples, when kept

Invalidation is versioned: every entry records
``library-version:cache-schema:spec-schema``; a mismatch on read
deletes the entry and reports a miss, so stale results can never leak
across releases or semantic changes.  Writes are atomic (tmp dir +
rename), making the cache safe under concurrent producers.

Corruption is *contained*, never fatal: ``meta.json`` stores a SHA-256
checksum of ``outcome.pkl`` (schema 2), so bit-rot, torn writes, and
unpicklable payloads are all detected on read — the entry is moved to
``<root>/.quarantine/`` with a warning and the read counts as a miss,
preserving the executor invariant that a bad cache entry costs one
re-simulation, not a crash.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import tempfile
import time
import warnings
from pathlib import Path
from typing import Optional

import numpy as np

from .spec import SPEC_SCHEMA, RunResult, RunSpec

__all__ = ["CACHE_SCHEMA", "QUARANTINE_DIR", "cache_version", "ResultCache"]

#: Bump when the on-disk layout changes.
#: 2: ``meta.json`` gains ``"checksum"`` (SHA-256 of ``outcome.pkl``)
#:    so payload bit-rot is detected on read instead of trusted.
#: 3: ``RunResult`` gains ``group_metrics`` (scenario runs); pickles
#:    written before the field would unpickle without the attribute.
#: 4: ``RunResult`` gains ``guards`` (the validity audit) and
#:    ``InstanceReport`` gains the guard tape (``phase_windows`` /
#:    ``warmup_tail``).  Purely additive, so schema-3 entries written
#:    by the same library+spec schema stay *readable*: on read the
#:    missing attributes are backfilled with their defaults
#:    (``guards=None`` — un-audited), see ``_COMPATIBLE_SCHEMAS``.
CACHE_SCHEMA = 4

#: Older cache schemas whose pickles this version can still read
#: (additive field changes only).  The library and spec schema parts
#: of the version string must still match exactly.
_COMPATIBLE_SCHEMAS = ("3",)

#: Corrupt entries are moved here (under the cache root), not deleted:
#: forensically useful, and excluded from entry counts and ``clear()``.
QUARANTINE_DIR = ".quarantine"


def _library_version() -> str:
    try:  # local import to avoid a cycle at package-import time
        from .. import __version__

        return __version__
    except Exception:  # pragma: no cover - defensive
        return "unknown"


def cache_version() -> str:
    """The invalidation key stored with every entry."""
    return f"{_library_version()}:{CACHE_SCHEMA}:{SPEC_SCHEMA}"


def _checksum(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def _version_readable(stored: str) -> bool:
    """Whether an entry written under ``stored`` can still be read.

    Exact match always can; otherwise the library version and spec
    schema must match exactly and the cache schema must be one of the
    additive-only :data:`_COMPATIBLE_SCHEMAS`.
    """
    if stored == cache_version():
        return True
    parts = stored.rsplit(":", 2)
    if len(parts) != 3:
        return False
    lib, schema, spec_schema = parts
    return (
        lib == _library_version()
        and spec_schema == str(SPEC_SCHEMA)
        and schema in _COMPATIBLE_SCHEMAS
    )


def _backfill_additive_fields(outcome: RunResult) -> None:
    """Give pickles from compatible older schemas the new attributes.

    Old pickles restore ``__dict__`` directly, skipping ``__init__``,
    so fields added since the entry was written are simply absent.
    """
    if not hasattr(outcome, "guards"):
        outcome.guards = None
    if not hasattr(outcome, "group_metrics"):
        outcome.group_metrics = {}
    for report in getattr(outcome, "reports", ()) or ():
        if not hasattr(report, "phase_windows"):
            report.phase_windows = np.empty((0, 4), dtype=float)
        if not hasattr(report, "warmup_tail"):
            report.warmup_tail = np.empty(0, dtype=float)


class ResultCache:
    """Digest-keyed store of completed runs.

    Parameters
    ----------
    root:
        Cache directory (created on demand).
    injector:
        Optional fault injector (``repro.faults.FaultInjector``) whose
        ``fire("cache.put")`` / ``fire("cache.get")`` hooks let the
        chaos harness corrupt entries deterministically.  ``None`` in
        production — the hooks are no-ops.
    """

    def __init__(self, root: os.PathLike, injector: Optional[object] = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.injector = injector
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0

    # ------------------------------------------------------------------
    def _entry_dir(self, digest: str) -> Path:
        return self.root / digest[:2] / digest[2:]

    def _entries(self):
        """Live entry metas (the quarantine area is not an entry)."""
        for meta in self.root.glob("*/*/meta.json"):
            if QUARANTINE_DIR not in meta.parts:
                yield meta

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def __contains__(self, spec: RunSpec) -> bool:
        return (self._entry_dir(spec.digest()) / "meta.json").exists()

    def _fire(self, site: str) -> Optional[object]:
        fire = getattr(self.injector, "fire", None)
        return fire(site) if fire is not None else None

    # ------------------------------------------------------------------
    def _quarantine(self, entry: Path, reason: str) -> None:
        """Move a corrupt entry aside (idempotent, best-effort)."""
        target = self.root / QUARANTINE_DIR / f"{entry.parent.name}{entry.name}"
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            if target.exists():
                shutil.rmtree(target, ignore_errors=True)
            os.replace(entry, target)
        except OSError:
            shutil.rmtree(entry, ignore_errors=True)
        self.quarantined += 1
        warnings.warn(
            f"quarantined corrupt cache entry {entry.parent.name}{entry.name}"
            f" ({reason}); treating as a miss",
            RuntimeWarning,
            stacklevel=3,
        )

    def get(self, spec: RunSpec) -> Optional[RunResult]:
        """The cached result for ``spec``, or ``None`` on miss.

        Entries written by an older library/schema version are deleted
        on sight (versioned invalidation); corrupt or truncated
        entries — undecodable ``meta.json``, checksum mismatch,
        unpicklable ``outcome.pkl`` — are quarantined with a warning
        and reported as misses.  ``get`` never raises for on-disk
        state.
        """
        digest = spec.digest()
        entry = self._entry_dir(digest)
        meta_path = entry / "meta.json"
        if not meta_path.exists():
            self.misses += 1
            return None
        try:
            with open(meta_path) as f:
                meta = json.load(f)
            if not isinstance(meta, dict):
                raise ValueError("meta.json is not an object")
        except (OSError, ValueError):
            self._quarantine(entry, "corrupt meta.json")
            self.misses += 1
            return None
        if not _version_readable(str(meta.get("version", ""))):
            shutil.rmtree(entry, ignore_errors=True)
            self.misses += 1
            return None
        try:
            with open(entry / "outcome.pkl", "rb") as f:
                payload = f.read()
        except OSError:
            self._quarantine(entry, "unreadable outcome.pkl")
            self.misses += 1
            return None
        expected = str(meta.get("checksum", ""))
        if expected and _checksum(payload) != expected:
            self._quarantine(entry, "outcome.pkl checksum mismatch (bit-rot?)")
            self.misses += 1
            return None
        try:
            outcome: RunResult = pickle.loads(payload)
        except Exception:
            # Torn/corrupt/stale payload (including AttributeError from
            # renamed classes): contain it, report a miss.
            self._quarantine(entry, "unpicklable outcome.pkl")
            self.misses += 1
            return None
        _backfill_additive_fields(outcome)
        outcome.from_cache = True
        outcome.wall_s = 0.0
        self.hits += 1
        return outcome

    def put(self, spec: RunSpec, outcome: RunResult) -> Path:
        """Store ``outcome`` under ``spec``'s digest (atomic).

        Returns the entry directory.  A concurrent writer racing on the
        same digest is harmless: both write identical content and the
        loser's rename is discarded.
        """
        digest = spec.digest()
        entry = self._entry_dir(digest)
        entry.parent.mkdir(parents=True, exist_ok=True)
        tmp = Path(
            tempfile.mkdtemp(prefix=f".tmp-{digest[:8]}-", dir=self.root)
        )
        try:
            payload = pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL)
            with open(tmp / "outcome.pkl", "wb") as f:
                f.write(payload)
            raw_name = None
            raw = outcome.raw_samples()
            if raw.size:
                raw_name = "raw.npy"
                np.save(tmp / raw_name, raw)
            meta = {
                "version": cache_version(),
                "digest": digest,
                "checksum": _checksum(payload),
                "spec": spec.describe(),
                "metrics": {repr(q): v for q, v in outcome.metrics.items()},
                "wall_s": outcome.wall_s,
                "events_processed": outcome.events_processed,
                "raw_path": raw_name,
                "stored_at": time.time(),
            }
            with open(tmp / "meta.json", "w") as f:
                json.dump(meta, f, indent=1, sort_keys=True)
            try:
                os.replace(tmp, entry)
            except OSError:
                # Non-empty target (concurrent writer won): keep theirs.
                shutil.rmtree(tmp, ignore_errors=True)
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        self.stores += 1
        action = self._fire("cache.put")
        if action is not None and getattr(action, "kind", "") == "corrupt_cache_entry":
            self._corrupt_entry(entry)
        return entry

    def _corrupt_entry(self, entry: Path) -> None:
        """Chaos hook: flip bytes in the stored payload (checksum kept
        stale, exactly what bit-rot looks like)."""
        path = entry / "outcome.pkl"
        try:
            data = bytearray(path.read_bytes())
            if data:
                mid = len(data) // 2
                data[mid] ^= 0xFF
                data[-1] ^= 0xFF
                path.write_bytes(bytes(data))
        except OSError:  # pragma: no cover - chaos best-effort
            pass

    def raw_path(self, spec: RunSpec) -> Optional[Path]:
        """Path of the cached raw-sample array for ``spec``, if any."""
        entry = self._entry_dir(spec.digest())
        path = entry / "raw.npy"
        return path if path.exists() else None

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for meta in list(self._entries()):
            shutil.rmtree(meta.parent, ignore_errors=True)
            removed += 1
        return removed

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantined,
            "entries": len(self),
            "version": cache_version(),
        }
