"""Content-addressed on-disk result cache.

Five benchmark artifacts derive from the same factorial sweep, and
utilization sweeps re-probe the same (workload, util, seed) points
across CLI invocations — yet before this layer every invocation
re-simulated from scratch.  The cache keys completed
:class:`~repro.exec.spec.RunResult` values by the *content digest* of
the :class:`~repro.exec.spec.RunSpec` that produced them, so identical
experiments are simulated once per machine, ever.

Layout (one directory per entry, named by digest)::

    <root>/<dd>/<igest...>/
        meta.json      # version, digest, metrics, telemetry, raw path
        outcome.pkl    # the full pickled RunResult
        raw.npy        # pooled raw latency samples, when kept

Invalidation is versioned: every entry records
``library-version:cache-schema:spec-schema``; a mismatch on read
deletes the entry and reports a miss, so stale results can never leak
across releases or semantic changes.  Writes are atomic (tmp dir +
rename), making the cache safe under concurrent producers.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import tempfile
from pathlib import Path
from typing import Optional

import numpy as np

from .spec import SPEC_SCHEMA, RunResult, RunSpec

__all__ = ["CACHE_SCHEMA", "cache_version", "ResultCache"]

#: Bump when the on-disk layout changes.
CACHE_SCHEMA = 1


def _library_version() -> str:
    try:  # local import to avoid a cycle at package-import time
        from .. import __version__

        return __version__
    except Exception:  # pragma: no cover - defensive
        return "unknown"


def cache_version() -> str:
    """The invalidation key stored with every entry."""
    return f"{_library_version()}:{CACHE_SCHEMA}:{SPEC_SCHEMA}"


class ResultCache:
    """Digest-keyed store of completed runs.

    Parameters
    ----------
    root:
        Cache directory (created on demand).
    """

    def __init__(self, root: os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    def _entry_dir(self, digest: str) -> Path:
        return self.root / digest[:2] / digest[2:]

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*/meta.json"))

    def __contains__(self, spec: RunSpec) -> bool:
        return (self._entry_dir(spec.digest()) / "meta.json").exists()

    # ------------------------------------------------------------------
    def get(self, spec: RunSpec) -> Optional[RunResult]:
        """The cached result for ``spec``, or ``None`` on miss.

        Entries written by an older library/schema version are deleted
        on sight (versioned invalidation).
        """
        digest = spec.digest()
        entry = self._entry_dir(digest)
        meta_path = entry / "meta.json"
        try:
            with open(meta_path) as f:
                meta = json.load(f)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if meta.get("version") != cache_version():
            shutil.rmtree(entry, ignore_errors=True)
            self.misses += 1
            return None
        try:
            with open(entry / "outcome.pkl", "rb") as f:
                outcome: RunResult = pickle.load(f)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            # Torn or stale payload: drop the entry, report a miss.
            shutil.rmtree(entry, ignore_errors=True)
            self.misses += 1
            return None
        outcome.from_cache = True
        outcome.wall_s = 0.0
        self.hits += 1
        return outcome

    def put(self, spec: RunSpec, outcome: RunResult) -> Path:
        """Store ``outcome`` under ``spec``'s digest (atomic).

        Returns the entry directory.  A concurrent writer racing on the
        same digest is harmless: both write identical content and the
        loser's rename is discarded.
        """
        digest = spec.digest()
        entry = self._entry_dir(digest)
        entry.parent.mkdir(parents=True, exist_ok=True)
        tmp = Path(
            tempfile.mkdtemp(prefix=f".tmp-{digest[:8]}-", dir=self.root)
        )
        try:
            with open(tmp / "outcome.pkl", "wb") as f:
                pickle.dump(outcome, f, protocol=pickle.HIGHEST_PROTOCOL)
            raw_name = None
            raw = outcome.raw_samples()
            if raw.size:
                raw_name = "raw.npy"
                np.save(tmp / raw_name, raw)
            meta = {
                "version": cache_version(),
                "digest": digest,
                "spec": spec.describe(),
                "metrics": {repr(q): v for q, v in outcome.metrics.items()},
                "wall_s": outcome.wall_s,
                "events_processed": outcome.events_processed,
                "raw_path": raw_name,
            }
            with open(tmp / "meta.json", "w") as f:
                json.dump(meta, f, indent=1, sort_keys=True)
            try:
                os.replace(tmp, entry)
            except OSError:
                # Non-empty target (concurrent writer won): keep theirs.
                shutil.rmtree(tmp, ignore_errors=True)
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        self.stores += 1
        return entry

    def raw_path(self, spec: RunSpec) -> Optional[Path]:
        """Path of the cached raw-sample array for ``spec``, if any."""
        entry = self._entry_dir(spec.digest())
        path = entry / "raw.npy"
        return path if path.exists() else None

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for meta in list(self.root.glob("*/*/meta.json")):
            shutil.rmtree(meta.parent, ignore_errors=True)
            removed += 1
        return removed

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "entries": len(self),
            "version": cache_version(),
        }
