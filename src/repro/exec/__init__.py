"""repro.exec — the unified experiment-execution layer.

Everything the library runs is one shape of work: an independent
experiment described by a :class:`~repro.exec.spec.RunSpec`, executed
by :func:`repro.measure.measure_spec` on the measurement backend the
spec names (``spec.backend``; the simulator by default), scheduled
through an executor
backend (serial, process pool, or a distributed cluster), optionally
memoized by a content-addressed cache (:mod:`~repro.exec.cache`), and
observed through progress hooks (:mod:`~repro.exec.progress`)::

    spec -> schedule -> (serial | process pool | cluster) -> cached artifacts
                                                          -> progress telemetry

All experiment drivers (``core.procedure``, ``core.attribution``,
``core.sweeps``, ``core.capacity``) and the CLI submit work
exclusively through this package.

Public surface
--------------
This module re-exports the **stable** names only; anything not listed
in ``__all__`` (module internals, the wire protocol, coordinator
plumbing) is private and may change without notice.  The backend
contract for third-party executor implementers is documented in
``src/repro/exec/API.md``.

* the work unit: ``RunSpec``, ``RunResult``, ``spec_digest``,
  ``metric_samples``, ``SPEC_SCHEMA`` (plus ``run_spec``, a
  deprecated alias for :func:`repro.measure.measure_spec`)
* the executor API: ``Executor`` (protocol), ``Capabilities``,
  ``make_executor``, ``register_backend``, ``available_backends``,
  per-backend options (``SerialOptions``/``ProcessOptions``/
  ``ClusterOptions``)
* backends: ``SerialExecutor``, ``ParallelExecutor``,
  ``ClusterExecutor``, ``LocalClusterExecutor``
* caching: ``ResultCache``, ``cache_version``, ``CACHE_SCHEMA``
* scoped defaults: ``execute_specs``, ``execution``,
  ``default_executor``, ``set_execution_defaults``,
  ``get_execution_defaults``
* observability: ``RunEvent``, ``ProgressHook``, ``StderrProgress``,
  ``Telemetry``, ``chain``
* resilience: ``RetryPolicy``, ``HealthPolicy``, ``CircuitBreaker``,
  ``RunJournal``, ``classify_error``, ``TRANSIENT_ERROR_TYPES``,
  ``QUARANTINE_DIR``
* errors: ``ExecError``, ``ExecTimeout``, ``SimulatedCrash``
"""

from .api import (
    BackendInfo,
    Capabilities,
    ClusterOptions,
    Executor,
    HealthPolicy,
    ProcessOptions,
    RetryPolicy,
    SerialOptions,
    available_backends,
    backend_info,
    make_executor,
    register_backend,
)
from .cache import CACHE_SCHEMA, QUARANTINE_DIR, ResultCache, cache_version
from .executors import (
    ExecError,
    ExecTimeout,
    ParallelExecutor,
    SerialExecutor,
    default_executor,
    execute_specs,
    execution,
    get_execution_defaults,
    set_execution_defaults,
)
from .distributed import (
    TRANSIENT_ERROR_TYPES,
    CircuitBreaker,
    ClusterExecutor,
    LocalClusterExecutor,
    SimulatedCrash,
    classify_error,
)
from .journal import RunJournal
from .progress import ProgressHook, RunEvent, StderrProgress, Telemetry, chain
from .spec import SPEC_SCHEMA, RunResult, RunSpec, metric_samples, run_spec, spec_digest

__all__ = [
    # work unit
    "SPEC_SCHEMA",
    "RunSpec",
    "RunResult",
    "run_spec",
    "spec_digest",
    "metric_samples",
    # executor API
    "Executor",
    "Capabilities",
    "BackendInfo",
    "SerialOptions",
    "ProcessOptions",
    "ClusterOptions",
    "make_executor",
    "register_backend",
    "available_backends",
    "backend_info",
    # backends
    "SerialExecutor",
    "ParallelExecutor",
    "ClusterExecutor",
    "LocalClusterExecutor",
    # caching
    "CACHE_SCHEMA",
    "ResultCache",
    "cache_version",
    # scoped defaults & conveniences
    "execute_specs",
    "execution",
    "default_executor",
    "set_execution_defaults",
    "get_execution_defaults",
    # observability
    "RunEvent",
    "ProgressHook",
    "StderrProgress",
    "Telemetry",
    "chain",
    # resilience
    "RetryPolicy",
    "HealthPolicy",
    "CircuitBreaker",
    "RunJournal",
    "classify_error",
    "TRANSIENT_ERROR_TYPES",
    "QUARANTINE_DIR",
    # errors
    "ExecError",
    "ExecTimeout",
    "SimulatedCrash",
]
