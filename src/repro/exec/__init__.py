"""repro.exec — the unified experiment-execution layer.

Everything the library runs is one shape of work: an independent
experiment described by a :class:`~repro.exec.spec.RunSpec`, executed
by :func:`~repro.exec.spec.run_spec`, scheduled through an executor
(:mod:`~repro.exec.executors`), optionally memoized by a
content-addressed cache (:mod:`~repro.exec.cache`), and observed
through progress hooks (:mod:`~repro.exec.progress`)::

    spec -> schedule -> (serial | parallel) workers -> cached artifacts
                                                    -> progress telemetry

All four experiment drivers (``core.procedure``, ``core.attribution``,
``core.sweeps``, ``core.capacity``) and the CLI submit work exclusively
through this package.
"""

from .cache import CACHE_SCHEMA, ResultCache, cache_version
from .executors import (
    ExecError,
    ExecTimeout,
    ParallelExecutor,
    SerialExecutor,
    default_executor,
    execute_specs,
    execution,
    get_execution_defaults,
    make_executor,
    set_execution_defaults,
)
from .progress import ProgressHook, RunEvent, StderrProgress, Telemetry, chain
from .spec import SPEC_SCHEMA, RunResult, RunSpec, metric_samples, run_spec, spec_digest

__all__ = [
    "SPEC_SCHEMA",
    "CACHE_SCHEMA",
    "RunSpec",
    "RunResult",
    "run_spec",
    "spec_digest",
    "metric_samples",
    "ResultCache",
    "cache_version",
    "SerialExecutor",
    "ParallelExecutor",
    "ExecError",
    "ExecTimeout",
    "make_executor",
    "default_executor",
    "execute_specs",
    "execution",
    "set_execution_defaults",
    "get_execution_defaults",
    "RunEvent",
    "ProgressHook",
    "StderrProgress",
    "Telemetry",
    "chain",
]
