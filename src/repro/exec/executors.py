"""Executors: run batches of independent experiments, serially or not.

The repeated-run procedure, the randomized factorial sweep, the
utilization sweep, and the capacity search are all embarrassingly
parallel — independent experiments with no shared state beyond their
spec.  Both executors here expose one verb:

    ``run(specs, progress=None) -> list of results`` (ordered)

with *identical semantics*: because :func:`repro.measure.measure_spec`
is a pure function of its spec on deterministic backends,
``SerialExecutor`` and ``ParallelExecutor`` produce bit-identical
results for the same specs (tested in ``tests/test_exec.py``).  Specs
whose measurement backend is *not* deterministic (e.g. ``"live"``)
bypass the result cache entirely — a wall-clock measurement is a
sample, not a value, and must never short-circuit a future run.

:class:`ParallelExecutor` adds a ``ProcessPoolExecutor`` behind
bounded submission (at most ``2 x max_workers`` futures outstanding,
so a 480-experiment factorial does not pickle 480 specs up front),
a per-task ``timeout``, and retry-on-crash: a worker that dies
(segfault, OOM-kill, ``os._exit``) breaks the pool, which is rebuilt
and the unfinished specs resubmitted up to ``retries`` times.
Deterministic task exceptions are *not* retried — re-running a pure
function on the same input is futile — they propagate immediately.

An optional :class:`~repro.exec.cache.ResultCache` short-circuits
execution for specs whose digest is already stored.

Module-level defaults (``set_execution_defaults`` / the ``execution``
context manager) let entry points like the CLI pick ``--jobs`` and
``--cache-dir`` once, while every driver that was not handed an
explicit executor inherits them via :func:`default_executor`.
"""

from __future__ import annotations

import dataclasses
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from .api import (
    Capabilities,
    HealthPolicy,
    ProcessOptions,
    RetryPolicy,
    SerialOptions,
    backend_info,
    make_executor,  # noqa: F401 - re-exported for backwards compatibility
    register_backend,
)
from .api import make_executor as _make_executor
from ..measure.api import backend_is_deterministic, measure_spec
from .cache import ResultCache
from .progress import ProgressHook, RunEvent

__all__ = [
    "ExecError",
    "ExecTimeout",
    "SerialExecutor",
    "ParallelExecutor",
    "make_executor",
    "execute_specs",
    "default_executor",
    "execution",
    "set_execution_defaults",
    "get_execution_defaults",
]


class ExecError(RuntimeError):
    """A task could not be completed by the executor."""


class ExecTimeout(ExecError):
    """A task exceeded the per-task timeout (after retries)."""


def _cacheable(spec: object) -> bool:
    """Whether results for ``spec`` may enter / be served from the cache.

    Only deterministic measurement backends honour the cache contract
    (equal digest ⇒ equal result); ``"sim"`` short-circuits without
    touching the registry.
    """
    name = getattr(spec, "backend", "sim") or "sim"
    return name == "sim" or backend_is_deterministic(name)


def _emit(
    progress: Optional[ProgressHook],
    index: int,
    total: int,
    spec: object,
    result: object,
    cached: bool,
    attempt: int = 1,
) -> None:
    if progress is None:
        return
    progress(
        RunEvent(
            index=index,
            total=total,
            digest=getattr(spec, "digest", lambda: "")(),
            tag=getattr(spec, "tag", ""),
            cached=cached,
            wall_s=float(getattr(result, "wall_s", 0.0)) if not cached else 0.0,
            events_processed=int(getattr(result, "events_processed", 0)),
            attempt=attempt,
        )
    )


class _ExecutorBase:
    """Shared cache plumbing and context-manager protocol."""

    def __init__(
        self,
        task: Callable[[object], object] = measure_spec,
        cache: Optional[ResultCache] = None,
    ):
        self.task = task
        self.cache = cache

    # -- cache ---------------------------------------------------------
    def _cache_get(self, spec: object) -> Optional[object]:
        if self.cache is None or not hasattr(spec, "digest"):
            return None
        if not _cacheable(spec):
            return None
        return self.cache.get(spec)

    def _cache_put(self, spec: object, result: object) -> None:
        if self.cache is not None and hasattr(spec, "digest") and _cacheable(spec):
            self.cache.put(spec, result)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:  # pragma: no cover - overridden where needed
        pass

    def __enter__(self) -> "_ExecutorBase":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- interface -----------------------------------------------------
    def run(
        self,
        specs: Sequence[object],
        progress: Optional[ProgressHook] = None,
    ) -> List[object]:
        raise NotImplementedError


class SerialExecutor(_ExecutorBase):
    """In-process, in-order execution (the reference semantics)."""

    def capabilities(self) -> Capabilities:
        return Capabilities(backend="serial")

    def run(
        self,
        specs: Sequence[object],
        progress: Optional[ProgressHook] = None,
    ) -> List[object]:
        specs = list(specs)
        results: List[object] = []
        for i, spec in enumerate(specs):
            result = self._cache_get(spec)
            cached = result is not None
            if not cached:
                result = self.task(spec)
                self._cache_put(spec, result)
            results.append(result)
            _emit(progress, i, len(specs), spec, result, cached)
        return results


class ParallelExecutor(_ExecutorBase):
    """Process-pool execution with bounded submission and crash retry.

    Parameters
    ----------
    max_workers:
        Worker processes (default: ``os.cpu_count()``).
    task:
        Module-level callable applied to each spec (picklable).
    cache:
        Optional result cache, consulted before submission.
    timeout:
        Per-task wall-clock budget in seconds.  A task that exceeds it
        is treated like a crash: the pool is abandoned (a stuck worker
        cannot be cancelled without breaking the pool anyway) and the
        spec retried on a fresh pool.
    retries:
        How many times a crashed/timed-out spec is re-attempted before
        :class:`ExecError` / :class:`ExecTimeout` is raised.
    max_inflight:
        Submission bound (default ``2 x max_workers``).
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        task: Callable[[object], object] = measure_spec,
        cache: Optional[ResultCache] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
        max_inflight: Optional[int] = None,
    ):
        super().__init__(task=task, cache=cache)
        self.max_workers = max_workers or os.cpu_count() or 1
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.timeout = timeout
        self.retries = retries
        self.max_inflight = max_inflight or 2 * self.max_workers
        self._pool: Optional[ProcessPoolExecutor] = None

    def capabilities(self) -> Capabilities:
        return Capabilities(
            backend="process",
            parallel=True,
            workers=self.max_workers,
            supports_timeout=True,
            supports_retry=True,
        )

    # -- pool lifecycle ------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def _abandon_pool(self) -> None:
        """Drop the pool without waiting (used after crash/timeout)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    # -- execution -----------------------------------------------------
    def run(
        self,
        specs: Sequence[object],
        progress: Optional[ProgressHook] = None,
    ) -> List[object]:
        specs = list(specs)
        total = len(specs)
        results: List[object] = [None] * total
        queue: deque = deque()
        attempts: Dict[int, int] = {}
        completed = 0

        for i, spec in enumerate(specs):
            hit = self._cache_get(spec)
            if hit is not None:
                results[i] = hit
                _emit(progress, completed, total, spec, hit, cached=True)
                completed += 1
            else:
                queue.append(i)
                attempts[i] = 0

        inflight: Dict[object, tuple] = {}  # future -> (index, deadline)

        def requeue_inflight() -> None:
            for _, (j, _dl) in inflight.items():
                queue.appendleft(j)
            inflight.clear()

        pool = self._ensure_pool() if queue else None
        while queue or inflight:
            while queue and len(inflight) < self.max_inflight:
                i = queue.popleft()
                attempts[i] += 1
                deadline = (
                    time.monotonic() + self.timeout if self.timeout else None
                )
                inflight[pool.submit(self.task, specs[i])] = (i, deadline)

            wait_for = None
            if self.timeout is not None:
                soonest = min(dl for _, dl in inflight.values())
                wait_for = max(0.0, soonest - time.monotonic()) + 0.01
            done, _ = wait(
                list(inflight), timeout=wait_for, return_when=FIRST_COMPLETED
            )

            if not done:
                # Deadline expired with nothing finished: treat the
                # overdue tasks as crashed.  Stuck workers cannot be
                # cancelled, so the whole pool is abandoned and every
                # in-flight spec resubmitted on a fresh one.
                now = time.monotonic()
                overdue = [
                    i for _, (i, dl) in inflight.items() if dl is not None and now >= dl
                ]
                requeue_inflight()
                self._abandon_pool()
                for i in overdue:
                    if attempts[i] > self.retries:
                        self.close()
                        raise ExecTimeout(
                            f"spec #{i} exceeded timeout={self.timeout}s "
                            f"after {attempts[i]} attempt(s)"
                        )
                pool = self._ensure_pool()
                continue

            broken = False
            for fut in done:
                i, _dl = inflight.pop(fut)
                try:
                    result = fut.result()
                except BrokenProcessPool as err:
                    # A worker died; every sibling future is poisoned.
                    if attempts[i] > self.retries:
                        self.close()
                        raise ExecError(
                            f"spec #{i} crashed the worker pool "
                            f"{attempts[i]} time(s); giving up"
                        ) from err
                    queue.appendleft(i)
                    requeue_inflight()
                    self._abandon_pool()
                    pool = self._ensure_pool()
                    broken = True
                    break
                except BaseException:
                    # Deterministic task failure: retrying a pure
                    # function of the spec cannot help.  Fail fast.
                    self.close()
                    raise
                results[i] = result
                self._cache_put(specs[i], result)
                _emit(
                    progress,
                    completed,
                    total,
                    specs[i],
                    result,
                    cached=False,
                    attempt=attempts[i],
                )
                completed += 1
            if broken:
                continue
        return results


# ----------------------------------------------------------------------
# backend registration
# ----------------------------------------------------------------------
def _serial_factory(
    options: object,
    task: Callable[[object], object],
    cache: Optional[ResultCache],
) -> SerialExecutor:
    return SerialExecutor(task=task, cache=cache)


def _process_factory(
    options: ProcessOptions,
    task: Callable[[object], object],
    cache: Optional[ResultCache],
) -> ParallelExecutor:
    return ParallelExecutor(
        max_workers=options.workers,
        task=task,
        cache=cache,
        timeout=options.timeout,
        retries=options.retries,
        max_inflight=options.max_inflight,
    )


register_backend(
    "serial",
    _serial_factory,
    SerialOptions,
    summary="in-process, in-order execution (the reference semantics)",
)
register_backend(
    "process",
    _process_factory,
    ProcessOptions,
    summary="local process pool: bounded submission, timeout, crash retry",
)


# ----------------------------------------------------------------------
# defaults & conveniences
# ----------------------------------------------------------------------
_UNSET = object()
_DEFAULTS = {
    "jobs": 1,
    "cache_dir": None,
    "backend": None,
    "workers": None,
    "retries": None,
    "min_healthy_workers": None,
    "fault_plan": None,
}


def set_execution_defaults(
    jobs: Optional[int] = None,
    cache_dir: object = _UNSET,
    backend: object = _UNSET,
    workers: object = _UNSET,
    retries: object = _UNSET,
    min_healthy_workers: object = _UNSET,
    fault_plan: object = _UNSET,
) -> None:
    """Set process-wide execution defaults (used by the CLI flags).

    ``backend`` names a registered executor backend (``"serial"``,
    ``"process"``, ``"cluster"``, or a third-party registration); when
    unset, ``jobs`` picks serial (1) vs process (>1) as before.
    ``workers`` sizes the chosen backend.

    Resilience defaults (applied only to backends whose options accept
    them — see :func:`default_executor`):

    * ``retries`` — attempt budget per spec (process ``retries`` /
      cluster ``max_attempts`` + retry policy);
    * ``min_healthy_workers`` — cluster graceful-degradation floor;
    * ``fault_plan`` — a ``repro.faults.FaultPlan`` (or injector) for
      chaos testing; never set in production.
    """
    if jobs is not None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        _DEFAULTS["jobs"] = int(jobs)
    if cache_dir is not _UNSET:
        _DEFAULTS["cache_dir"] = cache_dir
    if backend is not _UNSET:
        _DEFAULTS["backend"] = backend
    if workers is not _UNSET:
        if workers is not None and int(workers) < 1:
            raise ValueError("workers must be >= 1")
        _DEFAULTS["workers"] = None if workers is None else int(workers)
    if retries is not _UNSET:
        if retries is not None and int(retries) < 0:
            raise ValueError("retries must be >= 0")
        _DEFAULTS["retries"] = None if retries is None else int(retries)
    if min_healthy_workers is not _UNSET:
        if min_healthy_workers is not None and int(min_healthy_workers) < 0:
            raise ValueError("min_healthy_workers must be >= 0")
        _DEFAULTS["min_healthy_workers"] = (
            None if min_healthy_workers is None else int(min_healthy_workers)
        )
    if fault_plan is not _UNSET:
        _DEFAULTS["fault_plan"] = fault_plan


def get_execution_defaults() -> dict:
    return dict(_DEFAULTS)


@contextmanager
def execution(
    jobs: Optional[int] = None,
    cache_dir: object = _UNSET,
    backend: object = _UNSET,
    workers: object = _UNSET,
    retries: object = _UNSET,
    min_healthy_workers: object = _UNSET,
    fault_plan: object = _UNSET,
) -> Iterator[dict]:
    """Scoped execution defaults (restores the previous ones on exit)."""
    saved = get_execution_defaults()
    try:
        set_execution_defaults(
            jobs=jobs,
            cache_dir=cache_dir,
            backend=backend,
            workers=workers,
            retries=retries,
            min_healthy_workers=min_healthy_workers,
            fault_plan=fault_plan,
        )
        yield get_execution_defaults()
    finally:
        _DEFAULTS.clear()
        _DEFAULTS.update(saved)


def _resilience_kwargs(backend: str) -> Dict[str, object]:
    """Option kwargs for the configured resilience defaults, filtered
    to the fields the backend's options dataclass actually accepts
    (so ``--retries`` is meaningful for process *and* cluster while
    staying a silent no-op for serial)."""
    try:
        valid = {f.name for f in dataclasses.fields(backend_info(backend).options)}
    except Exception:  # unknown backend: let make_executor raise properly
        return {}
    kwargs: Dict[str, object] = {}
    retries = _DEFAULTS["retries"]
    if retries is not None:
        if "retries" in valid:
            kwargs["retries"] = int(retries)
        elif "retry" in valid:
            # Cluster semantics: N retries = N + 1 attempts, bounding
            # both lost-work requeues and transient task errors.
            kwargs["max_attempts"] = int(retries) + 1
            kwargs["retry"] = RetryPolicy(max_attempts=int(retries) + 1)
    floor = _DEFAULTS["min_healthy_workers"]
    if floor is not None and "health" in valid:
        kwargs["health"] = HealthPolicy(min_healthy_workers=int(floor))
    fault_plan = _DEFAULTS["fault_plan"]
    if fault_plan is not None and "fault_plan" in valid:
        kwargs["fault_plan"] = fault_plan
    return kwargs


def default_executor(task: Callable[[object], object] = measure_spec) -> _ExecutorBase:
    """An executor honouring the process-wide defaults.

    Resolution order: an explicitly configured ``backend`` wins;
    otherwise ``jobs`` selects serial (1) or the process pool (>1),
    exactly as before the registry existed.  Resilience defaults
    (``retries`` / ``min_healthy_workers`` / ``fault_plan``) are
    translated into the chosen backend's option fields when it has
    them (:func:`_resilience_kwargs`).
    """
    backend = _DEFAULTS["backend"]
    workers = _DEFAULTS["workers"]
    jobs = _DEFAULTS["jobs"]
    cache_dir = _DEFAULTS["cache_dir"]
    if backend is None:
        backend = "serial" if jobs <= 1 else "process"
        if workers is None and jobs > 1:
            workers = jobs
    if backend == "serial":
        return _make_executor("serial", task=task, cache_dir=cache_dir)
    option_kwargs = _resilience_kwargs(backend)
    if workers is not None:
        option_kwargs["workers"] = workers
    return _make_executor(backend, task=task, cache_dir=cache_dir, **option_kwargs)


def execute_specs(
    specs: Sequence[object],
    executor: Optional[_ExecutorBase] = None,
    progress: Optional[ProgressHook] = None,
) -> List[object]:
    """Run ``specs`` through ``executor`` (or the process default).

    The single entry point every driver uses; owns the executor's
    lifecycle when it created one.
    """
    if executor is not None:
        return executor.run(specs, progress=progress)
    with default_executor() as ex:
        return ex.run(specs, progress=progress)
