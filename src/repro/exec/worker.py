"""``repro-worker``: the pull-based remote worker process.

One worker = one TCP connection to a coordinator
(:class:`~repro.exec.distributed.Coordinator`).  The loop is the
simplest correct one — *pull, execute, push*::

    hello  ->  welcome | reject
    get    ->  task | wait | shutdown
    result ->  ack | reject

The worker never holds more than one task (the coordinator's lease is
the unit of fault tolerance: if this process dies mid-run, the lease
expires — or the connection drop is noticed sooner — and the task is
requeued elsewhere).  Task code is resolved by *reference*
(``module:qualname``, default ``repro.exec.spec:run_spec``) rather
than shipped as pickled code, so worker and coordinator must run the
same library version — which the handshake enforces.

Defence in depth: before running a spec the worker recomputes its
content digest and refuses the task on mismatch (a corrupt frame or a
version skew would otherwise poison the digest-keyed result merge);
the coordinator independently re-verifies the digest on receipt.

Start one by hand against a remote coordinator::

    repro-worker --connect 10.0.0.5:7781
    python -m repro.exec.worker --connect 10.0.0.5:7781 --max-tasks 100

or let :class:`~repro.exec.distributed.LocalClusterExecutor` spawn
local ones for you.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import time
import traceback
from typing import Callable, List, Optional

from .protocol import (
    ProtocolError,
    hello,
    recv_msg,
    resolve_task,
    send_msg,
    task_reference,  # noqa: F401 - historical import location
)

__all__ = ["serve", "main"]


def _verify_spec_digest(spec: object, expected: str) -> None:
    """Recompute the spec digest locally; raise on mismatch."""
    if not expected:
        return
    method = getattr(spec, "digest", None)
    if not callable(method):
        return
    actual = method()
    if actual != expected:
        raise ProtocolError(
            f"spec digest mismatch: coordinator sent {expected[:12]}, "
            f"local recompute is {actual[:12]} (version skew or corruption)"
        )


# ----------------------------------------------------------------------
# the serve loop
# ----------------------------------------------------------------------
def serve(
    host: str,
    port: int,
    name: Optional[str] = None,
    max_tasks: Optional[int] = None,
    connect_timeout: float = 10.0,
    log: Callable[[str], None] = lambda line: print(line, file=sys.stderr, flush=True),
) -> int:
    """Connect to a coordinator and pull tasks until told to stop.

    Returns the number of tasks completed (useful for tests and for
    ``--max-tasks`` batch workers).
    """
    worker_name = name or f"{socket.gethostname()}:{os.getpid()}"
    sock = socket.create_connection((host, port), timeout=connect_timeout)
    sock.settimeout(None)
    completed = 0
    try:
        send_msg(sock, hello(worker_name))
        reply = recv_msg(sock)
        if reply is None or reply.get("type") != "welcome":
            reason = (reply or {}).get("reason", "connection closed during handshake")
            raise ProtocolError(f"coordinator rejected worker: {reason}")
        task_cache: dict = {}
        while max_tasks is None or completed < max_tasks:
            try:
                send_msg(sock, {"type": "get"})
                msg = recv_msg(sock)
            except (OSError, ProtocolError):
                # The coordinator went away between tasks.  For a pull
                # worker that *is* the shutdown signal — exit cleanly;
                # any lease we held is requeued by the lease machinery.
                break
            if msg is None or msg.get("type") == "shutdown":
                break
            if msg.get("type") == "wait":
                time.sleep(float(msg.get("poll_s", 0.05)))
                continue
            if msg.get("type") != "task":
                raise ProtocolError(f"unexpected message {msg.get('type')!r}")

            task_ref = str(msg["task_ref"])
            task = task_cache.get(task_ref)
            if task is None:
                task = task_cache[task_ref] = resolve_task(task_ref)
            spec = msg["spec"]
            digest = str(msg.get("digest", ""))
            try:
                _verify_spec_digest(spec, digest)
                t0 = time.perf_counter()
                result = task(spec)
                wall_s = time.perf_counter() - t0
            except BaseException as err:
                # Deterministic task failure: report, let the
                # coordinator fail fast (re-running a pure function on
                # the same input is futile).
                try:
                    send_msg(
                        sock,
                        {
                            "type": "error",
                            "task_id": msg["task_id"],
                            "digest": digest,
                            "error": repr(err),
                            "traceback": traceback.format_exc(),
                        },
                    )
                    recv_msg(sock)  # ack
                except (OSError, ProtocolError):
                    break
                continue
            try:
                send_msg(
                    sock,
                    {
                        "type": "result",
                        "task_id": msg["task_id"],
                        "digest": digest,
                        "result": result,
                        "wall_s": wall_s,
                        "worker": worker_name,
                    },
                )
                recv_msg(sock)  # ack | reject (coordinator requeues on reject)
            except (OSError, ProtocolError):
                break  # coordinator gone mid-result: lease machinery recovers
            completed += 1
    finally:
        try:
            sock.close()
        except OSError:
            pass
    return completed


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Pull-based worker for the repro cluster executor.",
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address (printed by the cluster executor)",
    )
    parser.add_argument(
        "--name", default=None, help="worker name reported to the coordinator"
    )
    parser.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        metavar="N",
        help="exit after completing N tasks (default: run until shutdown)",
    )
    args = parser.parse_args(argv)
    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        parser.error(f"--connect must be HOST:PORT, got {args.connect!r}")
    try:
        serve(host, int(port_text), name=args.name, max_tasks=args.max_tasks)
    except (ProtocolError, OSError) as err:
        print(f"[repro-worker] {err}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
