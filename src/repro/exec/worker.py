"""``repro-worker``: the pull-based remote worker process.

One worker = one TCP connection to a coordinator
(:class:`~repro.exec.distributed.Coordinator`).  The loop is the
simplest correct one — *pull, execute, push*::

    hello  ->  welcome | reject
    get    ->  task | wait | shutdown
    result ->  ack | reject

The worker never holds more than one task (the coordinator's lease is
the unit of fault tolerance: if this process dies mid-run, the lease
expires — or the connection drop is noticed sooner — and the task is
requeued elsewhere).  Task code is resolved by *reference*
(``module:qualname``, default ``repro.measure.api:measure_spec``)
rather than shipped as pickled code, so worker and coordinator must
run the same library version — which the handshake enforces.

Defence in depth: before running a spec the worker recomputes its
content digest and refuses the task on mismatch (a corrupt frame or a
version skew would otherwise poison the digest-keyed result merge);
the coordinator independently re-verifies the digest on receipt.
Reported task errors carry the exception *type name* so the
coordinator can classify transient (``MemoryError``/``OSError``/
pickle transport) from deterministic failures and apply its retry
budget accordingly.

Fault injection (chaos testing only): ``--fault-plan`` accepts a
serialized ``repro.faults.FaultPlan``; the worker then consults the
deterministic injector at three hook points — ``worker.task`` (crash
/ hang / slowdown before executing), ``worker.result`` (corrupt the
echoed digest), ``worker.send`` (drop or truncate the result frame) —
all no-ops in production.

Start one by hand against a remote coordinator::

    repro-worker --connect 10.0.0.5:7781
    python -m repro.exec.worker --connect 10.0.0.5:7781 --max-tasks 100

or let :class:`~repro.exec.distributed.LocalClusterExecutor` spawn
local ones for you.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import time
import traceback
from typing import Callable, List, Optional

from .protocol import (
    ProtocolError,
    hello,
    recv_msg,
    resolve_task,
    send_msg,
    task_reference,  # noqa: F401 - historical import location
)

__all__ = ["serve", "main"]


def _verify_spec_digest(spec: object, expected: str) -> None:
    """Recompute the spec digest locally; raise on mismatch."""
    if not expected:
        return
    method = getattr(spec, "digest", None)
    if not callable(method):
        return
    actual = method()
    if actual != expected:
        raise ProtocolError(
            f"spec digest mismatch: coordinator sent {expected[:12]}, "
            f"local recompute is {actual[:12]} (version skew or corruption)"
        )


def _fire(injector: Optional[object], site: str) -> Optional[object]:
    if injector is None:
        return None
    fire = getattr(injector, "fire", None)
    return fire(site) if fire is not None else None


# ----------------------------------------------------------------------
# the serve loop
# ----------------------------------------------------------------------
def serve(
    host: str,
    port: int,
    name: Optional[str] = None,
    max_tasks: Optional[int] = None,
    connect_timeout: float = 10.0,
    injector: Optional[object] = None,
    log: Callable[[str], None] = lambda line: print(line, file=sys.stderr, flush=True),
) -> int:
    """Connect to a coordinator and pull tasks until told to stop.

    Returns the number of tasks completed (useful for tests and for
    ``--max-tasks`` batch workers).  ``injector`` is the deterministic
    fault-injection hook (``repro.faults.FaultInjector``); None in
    production.
    """
    worker_name = name or f"{socket.gethostname()}:{os.getpid()}"
    sock = socket.create_connection((host, port), timeout=connect_timeout)
    sock.settimeout(None)
    completed = 0
    try:
        send_msg(sock, hello(worker_name))
        reply = recv_msg(sock)
        if reply is None or reply.get("type") != "welcome":
            reason = (reply or {}).get("reason", "connection closed during handshake")
            raise ProtocolError(f"coordinator rejected worker: {reason}")
        task_cache: dict = {}
        while max_tasks is None or completed < max_tasks:
            try:
                send_msg(sock, {"type": "get"})
                msg = recv_msg(sock)
            except (OSError, ProtocolError):
                # The coordinator went away between tasks.  For a pull
                # worker that *is* the shutdown signal — exit cleanly;
                # any lease we held is requeued by the lease machinery.
                break
            if msg is None or msg.get("type") == "shutdown":
                break
            if msg.get("type") == "wait":
                time.sleep(float(msg.get("poll_s", 0.05)))
                continue
            if msg.get("type") != "task":
                raise ProtocolError(f"unexpected message {msg.get('type')!r}")

            task_ref = str(msg["task_ref"])
            task = task_cache.get(task_ref)
            if task is None:
                task = task_cache[task_ref] = resolve_task(task_ref)
            spec = msg["spec"]
            digest = str(msg.get("digest", ""))

            # ---- hook: worker.task (crash / hang / slow) -------------
            action = _fire(injector, "worker.task")
            kind = getattr(action, "kind", None)
            if kind == "worker_crash":
                log(f"[repro-worker {worker_name}] injected worker_crash")
                os._exit(17)  # simulates kill -9 / OOM-kill: no cleanup
            elif kind in ("worker_hang", "slow_worker"):
                # A hang outlives the lease (the coordinator requeues
                # and this result lands late); a slowdown does not.
                time.sleep(float(getattr(action, "seconds", 0.0)))

            try:
                _verify_spec_digest(spec, digest)
                t0 = time.perf_counter()
                result = task(spec)
                wall_s = time.perf_counter() - t0
            except BaseException as err:
                # Report with the exception type so the coordinator can
                # classify transient (retry budget) vs deterministic
                # (fail fast) failures.
                try:
                    send_msg(
                        sock,
                        {
                            "type": "error",
                            "task_id": msg["task_id"],
                            "digest": digest,
                            "error": repr(err),
                            "error_type": type(err).__name__,
                            "traceback": traceback.format_exc(),
                        },
                    )
                    recv_msg(sock)  # ack
                except (OSError, ProtocolError):
                    break
                continue

            # ---- hook: worker.result (poison the digest echo) --------
            action = _fire(injector, "worker.result")
            if getattr(action, "kind", None) == "corrupt_result":
                digest = "0" * 64  # coordinator must reject + requeue

            # ---- hook: worker.send (drop / truncate the frame) -------
            send_fault = None
            action = _fire(injector, "worker.send")
            if getattr(action, "kind", None) in ("drop_frame", "truncate_frame"):
                send_fault = action.kind
            try:
                send_msg(
                    sock,
                    {
                        "type": "result",
                        "task_id": msg["task_id"],
                        "digest": digest,
                        "result": result,
                        "wall_s": wall_s,
                        "worker": worker_name,
                    },
                    fault=send_fault,
                )
                if send_fault is not None:
                    # The frame is gone or torn: abandon the connection
                    # (exactly what a dying link looks like) and exit;
                    # the lease machinery requeues, respawn replaces us.
                    log(
                        f"[repro-worker {worker_name}] injected {send_fault}; "
                        "abandoning connection"
                    )
                    break
                recv_msg(sock)  # ack | reject (coordinator requeues on reject)
            except (OSError, ProtocolError):
                break  # coordinator gone mid-result: lease machinery recovers
            completed += 1
    finally:
        try:
            sock.close()
        except OSError:
            pass
    return completed


def _load_injector(plan_text: Optional[str]) -> Optional[object]:
    """Build a FaultInjector from ``--fault-plan`` (JSON text or a path).

    Imported lazily so production workers never touch ``repro.faults``.
    """
    if not plan_text:
        return None
    from ..faults.plan import FaultPlan  # local import: chaos only

    if os.path.exists(plan_text):
        with open(plan_text, encoding="utf-8") as fh:
            plan_text = fh.read()
    return FaultPlan.from_json(plan_text).injector()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Pull-based worker for the repro cluster executor.",
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address (printed by the cluster executor)",
    )
    parser.add_argument(
        "--name", default=None, help="worker name reported to the coordinator"
    )
    parser.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        metavar="N",
        help="exit after completing N tasks (default: run until shutdown)",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="JSON|PATH",
        help=(
            "chaos testing: serialized repro.faults.FaultPlan (JSON text "
            "or a file path); injects deterministic faults at the "
            "worker hook points"
        ),
    )
    args = parser.parse_args(argv)
    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        parser.error(f"--connect must be HOST:PORT, got {args.connect!r}")
    try:
        injector = _load_injector(args.fault_plan)
        serve(
            host,
            int(port_text),
            name=args.name,
            max_tasks=args.max_tasks,
            injector=injector,
        )
    except (ProtocolError, OSError) as err:
        print(f"[repro-worker] {err}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
