"""Distributed executor: a socket-based work-stealing cluster backend.

The paper's methodology — many short, fully independent runs (Section
III-C defeats hysteresis exactly this way) — is embarrassingly
distributable: a run is a pure function of its
:class:`~repro.exec.spec.RunSpec`, so it can execute on any machine
and the result is verifiable by content digest.  This module exploits
that:

* :class:`Coordinator` — a threaded TCP server speaking
  :mod:`repro.exec.protocol`.  It serves a queue of pickled specs to
  any number of ``repro-worker`` processes, tracks a *lease* per
  issued task, requeues work when a lease expires or a connection
  drops (worker death), and **verifies the spec digest on every
  result** before accepting it.
* **Work stealing / straggler re-issue** — when the queue drains but
  leased tasks are still outstanding, idle workers are handed
  speculative duplicates of the oldest lease.  Determinism (equal
  spec ⇒ bit-identical result) makes this safe: whichever copy lands
  first wins, the loser is discarded as a duplicate.
* :class:`ClusterExecutor` — the :class:`~repro.exec.api.Executor`
  implementation wrapping a coordinator.  Results are merged in
  submission order, written into the existing
  :class:`~repro.exec.cache.ResultCache`, and reported through the
  existing :class:`~repro.exec.progress.RunEvent` stream — drivers
  cannot tell it apart from the serial backend except by wall clock.
* :class:`LocalClusterExecutor` — the same executor, but it spawns
  its workers as local subprocesses (``python -m repro.exec.worker``),
  which is what ``--executor cluster --workers N`` and the tests use.
  Dead local workers are respawned (bounded) while a batch is active.

Self-healing (PR 3) — the measurement infrastructure is itself a
source of tail-latency lies if it fails unevenly ("Tell-Tale Tail
Latencies"), so failures are *classified and contained*:

* **transient vs deterministic errors** — a worker ``MemoryError`` /
  ``OSError`` / pickling transport error is retried under a
  :class:`~repro.exec.api.RetryPolicy` budget with exponential backoff
  and decorrelated jitter; a genuine task exception still fails fast
  (re-running a pure function on the same input is futile);
* **circuit breakers** — :class:`CircuitBreaker` quarantines workers
  whose leases repeatedly expire or whose results fail digest
  verification, and un-quarantines them after a cool-down
  (:class:`~repro.exec.api.HealthPolicy`);
* **run journal** — with ``ClusterOptions.journal_path`` set, issued
  and completed digests are appended to a crash-recoverable
  :class:`~repro.exec.journal.RunJournal`, so a restarted coordinator
  re-runs only unfinished specs (payloads come from the cache);
* **graceful degradation** — when healthy workers stay below
  ``HealthPolicy.min_healthy_workers`` for a grace period, the
  remaining specs fall back to the local process backend instead of
  stalling the batch;
* **deterministic fault injection** — every failure path above is
  exercisable through explicit hook points (``injector.fire(site)``),
  no-ops in production, driven by :mod:`repro.faults`.

Registered in the backend registry as ``"cluster"`` with
:class:`~repro.exec.api.ClusterOptions`.
"""

from __future__ import annotations

import os
import random
import re
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from queue import Empty, Queue
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .api import Capabilities, ClusterOptions, HealthPolicy, RetryPolicy, register_backend
from .cache import ResultCache
from .executors import ExecError, ParallelExecutor, _emit, _ExecutorBase
from .journal import RunJournal
from .progress import ProgressHook, RunEvent
from .protocol import (
    ProtocolError,
    handshake_reply,
    recv_msg,
    resolve_task,
    send_msg,
    task_reference,
)
from ..measure.api import measure_spec
from .spec import spec_digest

__all__ = [
    "Coordinator",
    "CircuitBreaker",
    "ClusterExecutor",
    "LocalClusterExecutor",
    "SimulatedCrash",
    "classify_error",
    "TRANSIENT_ERROR_TYPES",
]


def digest_of(spec: object) -> str:
    """Content digest for any spec (empty when uncanonicalizable)."""
    method = getattr(spec, "digest", None)
    if callable(method):
        return method()
    try:
        return spec_digest(spec)
    except Exception:
        return ""


class SimulatedCrash(ExecError):
    """An injected ``coordinator_restart`` fault killed the run loop.

    Raised only under fault injection; the run journal and result
    cache survive, so constructing a fresh executor with the same
    ``journal_path``/cache resumes the batch (see
    ``repro.faults.harness``).
    """


# ----------------------------------------------------------------------
# error classification (transient => retry budget; deterministic => fail)
# ----------------------------------------------------------------------
#: Exception type names whose failures are *environmental*, not a
#: property of the spec: memory pressure, I/O and connection trouble,
#: and pickle transport corruption.  Retrying these elsewhere/later can
#: succeed; retrying a genuine task exception cannot.
TRANSIENT_ERROR_TYPES = frozenset(
    {
        "MemoryError",
        "OSError",
        "IOError",
        "ConnectionError",
        "ConnectionResetError",
        "ConnectionAbortedError",
        "ConnectionRefusedError",
        "BrokenPipeError",
        "TimeoutError",
        "InterruptedError",
        "BlockingIOError",
        "PickleError",
        "PicklingError",
        "UnpicklingError",
        "EOFError",
        "BufferError",
    }
)

_REPR_TYPE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\s*\(")


def classify_error(error_type: str, error_repr: str = "") -> bool:
    """True when a worker-reported task error is *transient* (retryable).

    ``error_type`` is the exception class name shipped by the worker;
    older workers only ship ``repr(err)``, from which the leading
    identifier is recovered as a fallback.
    """
    name = (error_type or "").rpartition(".")[2]
    if not name and error_repr:
        match = _REPR_TYPE.match(error_repr.strip())
        if match:
            name = match.group(1)
    return name in TRANSIENT_ERROR_TYPES


def _fire(injector: Optional[object], site: str) -> Optional[object]:
    """Consult a fault injector at a hook point (no-op without one)."""
    if injector is None:
        return None
    fire = getattr(injector, "fire", None)
    return fire(site) if fire is not None else None


# ----------------------------------------------------------------------
# per-worker health: the circuit breaker
# ----------------------------------------------------------------------
class CircuitBreaker:
    """Consecutive-strike circuit breaker over worker names.

    Pure and clock-injected (``now`` everywhere) so it is unit
    testable without sleeping.  States per worker:

    * **closed** (healthy): tasks flow; strikes accumulate on
      attributed failures, reset on any accepted result.
    * **open** (quarantined): entered after ``trip_after`` consecutive
      strikes; ``allow`` is False until ``cooldown_s`` elapses.
    * **half-open** (probation): after cool-down one task is allowed;
      a further strike re-opens immediately, an accepted result
      closes the breaker.

    ``trip_after == 0`` disables the breaker entirely.
    """

    def __init__(self, policy: HealthPolicy):
        self.policy = policy
        self.strikes: Dict[str, int] = {}
        self.open_until: Dict[str, float] = {}
        self.probation: Set[str] = set()
        self.trips = 0

    def record_failure(self, worker: str, now: float) -> bool:
        """Account one attributed failure; True when the breaker trips."""
        if not worker or self.policy.trip_after <= 0:
            return False
        self.strikes[worker] = self.strikes.get(worker, 0) + 1
        tripped = worker in self.probation or (
            self.strikes[worker] >= self.policy.trip_after
        )
        if tripped:
            self.open_until[worker] = now + self.policy.cooldown_s
            self.probation.discard(worker)
            self.strikes[worker] = 0
            self.trips += 1
        return tripped

    def record_success(self, worker: str) -> None:
        if not worker:
            return
        self.strikes.pop(worker, None)
        self.open_until.pop(worker, None)
        self.probation.discard(worker)

    def allow(self, worker: str, now: float) -> bool:
        """May ``worker`` receive a task right now?"""
        if not worker or self.policy.trip_after <= 0:
            return True
        deadline = self.open_until.get(worker)
        if deadline is None:
            return True
        if now < deadline:
            return False
        # cool-down over: half-open probation
        self.open_until.pop(worker, None)
        self.probation.add(worker)
        return True

    def is_open(self, worker: str, now: float) -> bool:
        deadline = self.open_until.get(worker)
        return deadline is not None and now < deadline


# ----------------------------------------------------------------------
# batch bookkeeping (pure state machine; caller holds the lock)
# ----------------------------------------------------------------------
@dataclass
class _Lease:
    lease_id: int
    index: int
    deadline: float
    conn_id: int
    stolen: bool = False
    active: bool = True


class _Batch:
    """Lease/requeue/dedup/backoff state for one ``run()`` call.

    Deliberately free of sockets and clocks (``now`` is injected) so
    the lease-expiry, digest-mismatch, backoff, and worker-death paths
    are unit testable without a network in the loop.

    ``retry`` paces every requeue with exponential backoff +
    decorrelated jitter drawn from a seeded RNG (deterministic per
    seed); when None, a zero-backoff policy preserves the legacy
    immediate-requeue behaviour.
    """

    def __init__(
        self,
        indices: Sequence[int],
        digests: Dict[int, str],
        lease_s: float,
        max_attempts: int,
        steal: bool,
        retry: Optional[RetryPolicy] = None,
    ):
        self.pending: deque = deque(indices)
        self.todo: Set[int] = set(indices)
        self.digests = digests
        self.lease_s = lease_s
        self.max_attempts = max_attempts
        self.steal = steal
        self.retry = retry if retry is not None else RetryPolicy(backoff_base_s=0.0)
        self.done: Set[int] = set()
        self.failures: Dict[int, int] = {i: 0 for i in indices}
        self.transient_errors: Dict[int, int] = {i: 0 for i in indices}
        self.issues: Dict[int, int] = {i: 0 for i in indices}
        self.leases: Dict[int, _Lease] = {}
        self.active_by_index: Dict[int, Set[int]] = {i: set() for i in indices}
        self.not_before: Dict[int, float] = {}
        self.failed: Optional[str] = None
        self.last_expired: List[Tuple[int, int]] = []  # (index, conn_id)
        self._prev_delay: Dict[int, float] = {}
        self._rng = random.Random(self.retry.jitter_seed)
        self._next_lease_id = 0

    # -- backoff -------------------------------------------------------
    def _backoff_delay(self, index: int) -> float:
        """Decorrelated jitter: ``min(cap, uniform(base, prev * 3))``."""
        base = self.retry.backoff_base_s
        if base <= 0:
            return 0.0
        prev = self._prev_delay.get(index, base)
        delay = min(self.retry.backoff_cap_s, self._rng.uniform(base, prev * 3))
        self._prev_delay[index] = delay
        return delay

    # -- issue ---------------------------------------------------------
    def _issue(self, index: int, now: float, conn_id: int, stolen: bool) -> _Lease:
        self._next_lease_id += 1
        lease = _Lease(
            lease_id=self._next_lease_id,
            index=index,
            deadline=now + self.lease_s,
            conn_id=conn_id,
            stolen=stolen,
        )
        self.leases[lease.lease_id] = lease
        self.active_by_index[index].add(lease.lease_id)
        self.issues[index] += 1
        return lease

    def next_task(self, now: float, conn_id: int) -> Optional[_Lease]:
        """Lease the next *eligible* pending task, steal a straggler,
        or return None (worker should poll again)."""
        if self.failed:
            return None
        backed_off: List[int] = []
        lease: Optional[_Lease] = None
        while self.pending:
            index = self.pending.popleft()
            if index in self.done or self.active_by_index[index]:
                continue  # completed late or re-issued already
            if self.not_before.get(index, 0.0) > now:
                backed_off.append(index)  # still cooling down
                continue
            lease = self._issue(index, now, conn_id, stolen=False)
            break
        for index in reversed(backed_off):
            self.pending.appendleft(index)
        if lease is not None:
            return lease
        if self.steal and not backed_off:
            candidates = [
                cand
                for cand in self.leases.values()
                if cand.active
                and cand.index not in self.done
                and len(self.active_by_index[cand.index]) == 1
            ]
            if candidates:
                straggler = min(candidates, key=lambda cand: cand.deadline)
                return self._issue(straggler.index, now, conn_id, stolen=True)
        return None

    # -- completion ----------------------------------------------------
    def _deactivate(self, lease: _Lease) -> None:
        lease.active = False
        self.active_by_index[lease.index].discard(lease.lease_id)

    def _record_loss(
        self,
        index: int,
        reason: str,
        now: float = 0.0,
        budget: Optional[int] = None,
    ) -> None:
        """A lease was lost/rejected: back off and requeue, or fail."""
        if index in self.done:
            return
        self.failures[index] += 1
        bound = budget if budget is not None else self.max_attempts
        if self.failures[index] >= bound:
            self.failed = (
                f"spec #{index} failed {self.failures[index]} time(s) "
                f"(last: {reason}); giving up"
            )
        elif not self.active_by_index[index] and index not in self.pending:
            self.not_before[index] = now + self._backoff_delay(index)
            self.pending.appendleft(index)

    def complete(
        self,
        lease_id: int,
        echoed_digest: str,
        result_digest: str,
        now: float = 0.0,
    ) -> Tuple[str, Optional[int], int]:
        """Account one result; returns ``(status, index, attempt)``.

        status ∈ {"ok", "duplicate", "mismatch", "unknown"}.  A result
        for an *expired* lease is still accepted when the index is
        incomplete — late work is not wasted work.  Digest mismatches
        (corrupt worker, wrong library) are rejected and the spec
        requeued.
        """
        lease = self.leases.get(lease_id)
        if lease is None:
            return "unknown", None, 0
        index = lease.index
        expected = self.digests.get(index, "")
        self._deactivate(lease)
        if expected and (
            echoed_digest != expected or (result_digest and result_digest != expected)
        ):
            self._record_loss(index, "digest mismatch", now)
            return "mismatch", index, self.issues[index]
        if index in self.done:
            return "duplicate", index, self.issues[index]
        self.done.add(index)
        self.not_before.pop(index, None)
        for other_id in list(self.active_by_index[index]):
            self._deactivate(self.leases[other_id])
        return "ok", index, self.issues[index]

    def task_error(
        self,
        lease_id: int,
        error: str,
        traceback_text: str,
        error_type: str = "",
        now: float = 0.0,
    ) -> bool:
        """A worker reported a task exception.

        Transient errors (``MemoryError``/``OSError``/pickle transport
        — see :func:`classify_error`) are retried under the
        ``RetryPolicy`` budget with backoff; returns True in that
        case.  Deterministic task exceptions fail the batch fast
        (retry is futile) and return False.
        """
        lease = self.leases.get(lease_id)
        if lease is not None:
            self._deactivate(lease)
        if classify_error(error_type, error):
            index = lease.index if lease is not None else None
            if index is not None and index not in self.done:
                self.transient_errors[index] += 1
                if self.transient_errors[index] >= self.retry.max_attempts:
                    self.failed = (
                        f"spec #{index} hit {self.transient_errors[index]} "
                        f"transient error(s) (last: {error}); retry budget "
                        "exhausted"
                    )
                elif not self.active_by_index[index] and index not in self.pending:
                    self.not_before[index] = now + self._backoff_delay(index)
                    self.pending.appendleft(index)
            return True
        self.failed = f"task raised {error}\n{traceback_text}"
        return False

    # -- loss detection ------------------------------------------------
    def expire(self, now: float) -> List[int]:
        """Requeue tasks whose lease deadline has passed (worker death).

        ``last_expired`` additionally records ``(index, conn_id)``
        pairs so the caller can attribute the loss to a worker (for
        circuit breaking).
        """
        lost: List[int] = []
        self.last_expired = []
        for lease in list(self.leases.values()):
            if lease.active and lease.deadline <= now:
                self._deactivate(lease)
                if lease.index not in self.done:
                    lost.append(lease.index)
                    self.last_expired.append((lease.index, lease.conn_id))
                    self._record_loss(lease.index, "lease expired", now)
        return lost

    def drop_connection(self, conn_id: int, now: float = 0.0) -> List[int]:
        """A worker connection died: requeue its in-flight leases now."""
        lost: List[int] = []
        for lease in list(self.leases.values()):
            if lease.active and lease.conn_id == conn_id:
                self._deactivate(lease)
                if lease.index not in self.done:
                    lost.append(lease.index)
                    self._record_loss(lease.index, "worker connection lost", now)
        return lost

    # -- progress ------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.failed is not None or self.done >= self.todo


# ----------------------------------------------------------------------
# the coordinator (socket layer)
# ----------------------------------------------------------------------
class Coordinator:
    """Threaded TCP server feeding a :class:`_Batch` to remote workers.

    One handler thread per worker connection; completion/fatal/note
    events are delivered to the owning executor through ``events`` (a
    thread-safe queue), keeping cache writes and progress emission on
    the executor's thread.

    ``health`` enables the per-worker :class:`CircuitBreaker`;
    ``injector`` threads the deterministic fault-injection hook points
    (``coordinator.send``, ``coordinator.recv``) — both default to
    production no-ops.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        poll_s: float = 0.05,
        health: Optional[HealthPolicy] = None,
        injector: Optional[object] = None,
    ):
        self.poll_s = poll_s
        self.events: Queue = Queue()
        self.breaker = CircuitBreaker(health if health is not None else HealthPolicy())
        self.injector = injector
        self._lock = threading.Lock()
        self._batch: Optional[_Batch] = None
        self._specs: Dict[int, object] = {}
        self._task_ref: str = ""
        self._closing = False
        self._closed = False
        self._conn_seq = 0
        self._threads: List[threading.Thread] = []
        self._conns: Dict[int, socket.socket] = {}
        self._worker_names: Dict[int, str] = {}
        self._server = socket.create_server((host, port))
        self._server.settimeout(0.2)
        self.address: Tuple[str, int] = self._server.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-coordinator-accept", daemon=True
        )
        self._accept_thread.start()

    # -- notes to the executor -----------------------------------------
    def _note(self, kind: str, detail: str) -> None:
        self.events.put(("note", kind, detail))

    # -- batch lifecycle (called by the executor) ----------------------
    def start_batch(
        self,
        indices: Sequence[int],
        specs: Dict[int, object],
        digests: Dict[int, str],
        task_ref: str,
        lease_s: float,
        max_attempts: int,
        steal: bool,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        with self._lock:
            if self._batch is not None:
                raise RuntimeError("a batch is already active")
            self._specs = dict(specs)
            self._task_ref = task_ref
            self._batch = _Batch(indices, digests, lease_s, max_attempts, steal, retry)
        # drop events left over from an abandoned batch
        while True:
            try:
                self.events.get_nowait()
            except Empty:
                break

    def end_batch(self) -> None:
        with self._lock:
            self._batch = None
            self._specs = {}

    def sweep(self) -> None:
        """Expire overdue leases; emit fault/recovery notes; emit a
        fatal event if the batch died."""
        now = time.monotonic()
        expired: List[Tuple[int, str]] = []
        tripped: List[str] = []
        with self._lock:
            batch = self._batch
            if batch is None:
                return
            batch.expire(now)
            for index, conn_id in batch.last_expired:
                worker = self._worker_names.get(conn_id, f"conn{conn_id}")
                expired.append((index, worker))
                if self.breaker.record_failure(worker, now):
                    tripped.append(worker)
            failed = batch.failed
        for index, worker in expired:
            self._note("fault", f"lease expired for spec #{index} (worker {worker})")
            if not failed:
                self._note("recovery", f"spec #{index} requeued after lease expiry")
        for worker in tripped:
            self._note("fault", f"circuit opened: worker {worker} quarantined")
        if failed:
            self.events.put(("fatal", failed))

    def connected_workers(self) -> int:
        with self._lock:
            return len(self._conns)

    def healthy_workers(self) -> int:
        """Connected workers whose circuit breaker is not open."""
        now = time.monotonic()
        with self._lock:
            names = [
                self._worker_names.get(conn_id, f"conn{conn_id}")
                for conn_id in self._conns
            ]
        return sum(1 for name in names if not self.breaker.is_open(name, now))

    # -- server plumbing -----------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn, _addr = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # server socket closed
            self._conn_seq += 1
            conn_id = self._conn_seq
            with self._lock:
                if self._closing:
                    try:
                        conn.close()
                    except OSError:
                        pass
                    return
                self._conns[conn_id] = conn
            thread = threading.Thread(
                target=self._serve_conn,
                args=(conn, conn_id),
                name=f"repro-coordinator-conn{conn_id}",
                daemon=True,
            )
            with self._lock:
                # prune finished handler threads so the list stays bounded
                self._threads = [t for t in self._threads if t.is_alive()]
                self._threads.append(thread)
            thread.start()

    def _send(self, conn: socket.socket, msg: Dict[str, object]) -> None:
        """Send one message, passing through the fault-injection hook.

        An injected ``drop_frame``/``truncate_frame`` mangles the send
        and then abandons the connection (raising
        :class:`ProtocolError` so ``_serve_conn`` tears it down and
        the lease machinery requeues any in-flight work) — the same
        observable behaviour as a link dying mid-frame.
        """
        action = _fire(self.injector, "coordinator.send")
        kind = getattr(action, "kind", None)
        if kind in ("drop_frame", "truncate_frame"):
            self._note("fault", f"injected {kind} on coordinator send")
            try:
                send_msg(conn, msg, fault=kind)
            except OSError:
                pass
            raise ProtocolError(f"injected {kind}; abandoning connection")
        send_msg(conn, msg)

    def _serve_conn(self, conn: socket.socket, conn_id: int) -> None:
        try:
            msg = recv_msg(conn)
            if msg is None:
                return
            reply = handshake_reply(msg)
            send_msg(conn, reply)
            if reply["type"] != "welcome":
                return
            with self._lock:
                self._worker_names[conn_id] = str(msg.get("worker", f"conn{conn_id}"))
            while not self._closing:
                msg = recv_msg(conn)
                if msg is None:
                    return
                action = _fire(self.injector, "coordinator.recv")
                if getattr(action, "kind", None) in ("drop_frame", "truncate_frame"):
                    self._note(
                        "fault",
                        f"injected {action.kind} on coordinator receive",
                    )
                    raise ProtocolError(f"injected {action.kind} on receive")
                mtype = msg.get("type")
                if mtype == "get":
                    self._handle_get(conn, conn_id)
                elif mtype == "result":
                    self._handle_result(conn, conn_id, msg)
                elif mtype == "error":
                    self._handle_error(conn, conn_id, msg)
                else:
                    self._send(
                        conn,
                        {"type": "reject", "reason": f"unexpected {mtype!r}"},
                    )
        except (ProtocolError, OSError):
            pass  # dead/violating peer: leases requeued below
        finally:
            now = time.monotonic()
            with self._lock:
                self._conns.pop(conn_id, None)
                self._worker_names.pop(conn_id, None)
                batch = self._batch
                failed = None
                lost: List[int] = []
                if batch is not None:
                    lost = batch.drop_connection(conn_id, now)
                    failed = batch.failed
            for index in lost:
                self._note(
                    "recovery",
                    f"spec #{index} requeued after worker connection loss",
                )
            if failed:
                self.events.put(("fatal", failed))
            try:
                conn.close()
            except OSError:
                pass

    # -- message handlers ----------------------------------------------
    def _handle_get(self, conn: socket.socket, conn_id: int) -> None:
        now = time.monotonic()
        with self._lock:
            batch = self._batch
            if self._closing:
                self._send(conn, {"type": "shutdown"})
                return
            worker = self._worker_names.get(conn_id, f"conn{conn_id}")
            quarantined = not self.breaker.allow(worker, now)
            if batch is None or batch.finished or quarantined:
                lease = None
            else:
                lease = batch.next_task(now, conn_id)
            spec = self._specs.get(lease.index) if lease is not None else None
            digest = (
                batch.digests.get(lease.index, "")
                if (lease is not None and batch is not None)
                else ""
            )
            task_ref = self._task_ref
            lease_s = batch.lease_s if batch is not None else 0.0
        if lease is None:
            self._send(conn, {"type": "wait", "poll_s": self.poll_s})
            return
        self._send(
            conn,
            {
                "type": "task",
                "task_id": lease.lease_id,
                "digest": digest,
                "spec": spec,
                "task_ref": task_ref,
                "lease_s": lease_s,
                "stolen": lease.stolen,
            },
        )

    def _handle_result(
        self, conn: socket.socket, conn_id: int, msg: Dict[str, object]
    ) -> None:
        result = msg.get("result")
        now = time.monotonic()
        tripped = False
        with self._lock:
            batch = self._batch
            if batch is None:
                self._send(conn, {"type": "ack", "status": "stale"})
                return
            worker = self._worker_names.get(conn_id, f"conn{conn_id}")
            status, index, attempt = batch.complete(
                int(msg.get("task_id", -1)),
                str(msg.get("digest", "")),
                str(getattr(result, "spec_digest", "") or ""),
                now,
            )
            if status == "ok":
                self.breaker.record_success(worker)
            elif status == "mismatch":
                tripped = self.breaker.record_failure(worker, now)
            failed = batch.failed
        if status == "ok":
            self.events.put(
                (
                    "done",
                    index,
                    result,
                    float(msg.get("wall_s", 0.0)),
                    attempt,
                )
            )
        if status == "mismatch":
            self._note(
                "fault",
                f"digest mismatch on spec #{index} from worker {worker}; "
                "result discarded",
            )
            if not failed:
                self._note("recovery", f"spec #{index} requeued after mismatch")
            if tripped:
                self._note(
                    "fault", f"circuit opened: worker {worker} quarantined"
                )
        if failed:
            self.events.put(("fatal", failed))
        if status == "mismatch":
            self._send(
                conn,
                {"type": "reject", "reason": "digest mismatch; result discarded"},
            )
        else:
            self._send(conn, {"type": "ack", "status": status})

    def _handle_error(
        self, conn: socket.socket, conn_id: int, msg: Dict[str, object]
    ) -> None:
        now = time.monotonic()
        transient = False
        with self._lock:
            batch = self._batch
            if batch is not None:
                worker = self._worker_names.get(conn_id, f"conn{conn_id}")
                lease = batch.leases.get(int(msg.get("task_id", -1)))
                index = lease.index if lease is not None else None
                transient = batch.task_error(
                    int(msg.get("task_id", -1)),
                    str(msg.get("error", "unknown error")),
                    str(msg.get("traceback", "")),
                    error_type=str(msg.get("error_type", "")),
                    now=now,
                )
                if transient:
                    self.breaker.record_failure(worker, now)
                failed = batch.failed
            else:
                failed = None
        if transient:
            self._note(
                "fault",
                f"transient worker error on spec #{index}: {msg.get('error')}",
            )
            if not failed:
                self._note(
                    "recovery",
                    f"spec #{index} requeued under retry budget with backoff",
                )
        if failed:
            self.events.put(("fatal", failed))
        self._send(conn, {"type": "ack", "status": "error-recorded"})

    # -- shutdown ------------------------------------------------------
    def close(self) -> None:
        """Tear down the server, every connection, and every thread.

        Idempotent.  Connection sockets are closed on *this* path even
        when their handler threads are wedged (belt and braces with
        the per-connection ``finally`` close), so no file descriptors
        outlive the coordinator.
        """
        if self._closed:
            return
        self._closed = True
        self._closing = True
        try:
            self._server.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=2.0)
        with self._lock:
            conns = list(self._conns.values())
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        with self._lock:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout=2.0)
        # Final reap: anything a wedged handler did not release.
        with self._lock:
            leftover = list(self._conns.values())
            self._conns.clear()
            self._worker_names.clear()
            self._threads = [t for t in self._threads if t.is_alive()]
        for conn in leftover:
            try:
                conn.close()
            except OSError:
                pass


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------
class ClusterExecutor(_ExecutorBase):
    """Executor backed by a :class:`Coordinator` and remote workers.

    This base class spawns nothing: point external ``repro-worker``
    processes at :attr:`address` (printed by the CLI / available after
    ``start()``).  :class:`LocalClusterExecutor` adds local worker
    subprocesses for the single-machine case.

    Semantics match :class:`~repro.exec.executors.SerialExecutor`
    bit for bit: results come back in submission order, cache hits
    short-circuit execution, and equal specs produce equal results on
    any worker (verified by digest on receipt).

    Self-healing extras (all off unless configured in
    :class:`~repro.exec.api.ClusterOptions`): a crash-recoverable run
    journal (``journal_path``), graceful degradation to the process
    backend below a healthy-worker floor (``health``), and a
    deterministic fault-injection plan (``fault_plan``).
    """

    def __init__(
        self,
        options: Optional[ClusterOptions] = None,
        task: Callable[[object], object] = measure_spec,
        cache: Optional[ResultCache] = None,
        **option_kwargs: object,
    ):
        super().__init__(task=task, cache=cache)
        if options is not None and option_kwargs:
            raise TypeError("pass ClusterOptions or option kwargs, not both")
        self.options = options if options is not None else ClusterOptions(**option_kwargs)
        if self.options.lease_s <= 0:
            raise ValueError("lease_s must be positive")
        if self.options.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.options.retry.max_attempts < 1:
            raise ValueError("retry.max_attempts must be >= 1")
        # Validate that the task survives the module:qualname round
        # trip *before* shipping work (workers import it by reference).
        self.task_ref = task_reference(task)
        if resolve_task(self.task_ref) is not task:
            raise ValueError(
                f"task {task!r} is not importable as {self.task_ref!r}; "
                "cluster tasks must be module-level callables"
            )
        self._coordinator: Optional[Coordinator] = None
        self._journal: Optional[RunJournal] = None
        plan = self.options.fault_plan
        make = getattr(plan, "injector", None)
        self._injector = make() if callable(make) else None
        self.degraded = False

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self) -> Optional[Tuple[str, int]]:
        """(host, port) the coordinator listens on, once started."""
        return self._coordinator.address if self._coordinator else None

    @property
    def journal(self) -> Optional[RunJournal]:
        if self._journal is None and self.options.journal_path:
            self._journal = RunJournal(self.options.journal_path)
        return self._journal

    def start(self) -> Coordinator:
        """Bind the coordinator (idempotent); returns it."""
        if self._coordinator is None:
            self._coordinator = Coordinator(
                host=self.options.host,
                port=self.options.port,
                poll_s=self.options.poll_s,
                health=self.options.health,
                injector=self._injector,
            )
            if (
                self._injector is not None
                and self.cache is not None
                and getattr(self.cache, "injector", None) is None
            ):
                self.cache.injector = self._injector  # chaos-only wiring
            self._on_started()
        return self._coordinator

    def _on_started(self) -> None:
        """Subclass hook: called once after the coordinator binds."""

    def _maintain_workers(self) -> None:
        """Subclass hook: called every sweep while a batch is active."""

    def close(self) -> None:
        if self._coordinator is not None:
            self._coordinator.close()
            self._coordinator = None
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    def capabilities(self) -> Capabilities:
        return Capabilities(
            backend="cluster",
            parallel=True,
            distributed=True,
            deterministic=True,
            workers=self.options.workers or None,
            supports_timeout=False,
            supports_retry=True,
        )

    # -- degradation ---------------------------------------------------
    def _fallback_executor(self) -> _ExecutorBase:
        """The local backend used when the cluster degrades."""
        workers = max(1, min(self.options.workers or 1, os.cpu_count() or 1))
        return ParallelExecutor(max_workers=workers, task=self.task, cache=self.cache)

    def _degrade(
        self,
        specs: List[object],
        remaining: List[int],
        results: List[object],
        progress: Optional[ProgressHook],
        total: int,
        completed: int,
        journal_id: Optional[str],
    ) -> int:
        """Run the unfinished specs on the process backend; returns the
        updated completed count."""
        self.degraded = True
        if progress is not None:
            progress(
                RunEvent(
                    index=-1,
                    total=total,
                    kind="recovery",
                    detail=(
                        f"cluster below healthy-worker floor "
                        f"({self.options.health.min_healthy_workers}); "
                        f"degrading {len(remaining)} spec(s) to the "
                        "process backend"
                    ),
                )
            )
        with self._fallback_executor() as fallback:
            fallback_results = fallback.run([specs[i] for i in remaining])
        for i, result in zip(remaining, fallback_results):
            results[i] = result
            if journal_id is not None and self.journal is not None:
                self.journal.record_done(journal_id, digest_of(specs[i]))
            _emit(progress, completed, total, specs[i], result, cached=False)
            completed += 1
        return completed

    # -- execution -----------------------------------------------------
    def run(
        self,
        specs: Sequence[object],
        progress: Optional[ProgressHook] = None,
    ) -> List[object]:
        specs = list(specs)
        total = len(specs)
        results: List[object] = [None] * total
        completed = 0
        todo: List[int] = []
        journal = self.journal
        journaled_done = journal.completed_digests() if journal is not None else set()
        resumed = 0
        for i, spec in enumerate(specs):
            hit = self._cache_get(spec)
            if hit is not None:
                results[i] = hit
                resumed += digest_of(spec) in journaled_done
                _emit(progress, completed, total, spec, hit, cached=True)
                completed += 1
            else:
                todo.append(i)
        if resumed and progress is not None:
            progress(
                RunEvent(
                    index=-1,
                    total=total,
                    kind="recovery",
                    detail=(
                        f"journal resume: {resumed} spec(s) already "
                        "complete, served from cache"
                    ),
                )
            )
        if not todo:
            return results

        coordinator = self.start()
        digests = {i: digest_of(specs[i]) for i in todo}
        journal_id: Optional[str] = None
        if journal is not None:
            journal_id = journal.begin_batch([digests[i] for i in todo])
        coordinator.start_batch(
            todo,
            {i: specs[i] for i in todo},
            digests,
            self.task_ref,
            lease_s=self.options.lease_s,
            max_attempts=self.options.max_attempts,
            steal=self.options.steal,
            retry=self.options.retry,
        )
        sweep_every = max(0.01, min(0.25, self.options.lease_s / 4.0))
        pending = len(todo)
        floor = self.options.health.min_healthy_workers
        below_floor_since: Optional[float] = None
        try:
            while pending:
                action = _fire(self._injector, "coordinator.loop")
                if getattr(action, "kind", None) == "coordinator_restart":
                    raise SimulatedCrash(
                        "injected coordinator_restart: run journal and "
                        "cache survive; resume by re-running the batch"
                    )
                try:
                    event = coordinator.events.get(timeout=sweep_every)
                except Empty:
                    event = None
                if event is not None:
                    if event[0] == "fatal":
                        raise ExecError(event[1])
                    if event[0] == "note":
                        if progress is not None:
                            progress(
                                RunEvent(
                                    index=-1,
                                    total=total,
                                    kind=event[1],
                                    detail=event[2],
                                )
                            )
                    else:
                        _kind, index, result, _wall_s, attempt = event
                        if results[index] is None:
                            results[index] = result
                            self._cache_put(specs[index], result)
                            if journal_id is not None and journal is not None:
                                journal.record_done(journal_id, digests[index])
                            _emit(
                                progress,
                                completed,
                                total,
                                specs[index],
                                result,
                                cached=False,
                                attempt=attempt,
                            )
                            completed += 1
                            pending -= 1
                coordinator.sweep()
                self._maintain_workers()
                if pending and floor > 0:
                    healthy = self.healthy_workers()
                    now = time.monotonic()
                    if healthy < floor:
                        if below_floor_since is None:
                            below_floor_since = now
                        elif now - below_floor_since >= self.options.health.degrade_after_s:
                            remaining = [i for i in todo if results[i] is None]
                            coordinator.end_batch()
                            completed = self._degrade(
                                specs,
                                remaining,
                                results,
                                progress,
                                total,
                                completed,
                                journal_id,
                            )
                            pending = 0
                    else:
                        below_floor_since = None
        finally:
            coordinator.end_batch()
        if journal_id is not None and journal is not None:
            journal.end_batch(journal_id)
        return results

    def healthy_workers(self) -> int:
        """Connected, non-quarantined workers (0 before ``start``)."""
        if self._coordinator is None:
            return 0
        return self._coordinator.healthy_workers()


class LocalClusterExecutor(ClusterExecutor):
    """A cluster whose workers are local subprocesses.

    ``options.workers`` subprocesses run ``python -m repro.exec.worker``
    pointed at the coordinator.  A worker that dies mid-batch (crash,
    ``kill -9``) is detected two ways — connection drop (immediate
    requeue) and lease expiry (belt and braces) — and respawned while
    a batch is active, up to ``2 x workers`` respawns total.

    This is what ``repro run <artifact> --executor cluster --workers N``
    and ``make_executor("cluster", workers=N)`` construct.
    """

    def __init__(self, *args: object, **kwargs: object):
        super().__init__(*args, **kwargs)
        if self.options.workers < 1:
            raise ValueError("LocalClusterExecutor needs workers >= 1")
        self._procs: List[subprocess.Popen] = []
        self._respawns_left = 2 * self.options.workers

    # -- worker management ---------------------------------------------
    def _spawn_worker(self, name: str) -> subprocess.Popen:
        host, port = self.address
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        argv = [
            sys.executable,
            "-m",
            "repro.exec.worker",
            "--connect",
            f"{host}:{port}",
            "--name",
            name,
        ]
        plan = self.options.fault_plan
        plan = getattr(plan, "plan", plan)  # accept FaultInjector too
        to_json = getattr(plan, "to_json", None)
        if callable(to_json):
            argv += ["--fault-plan", to_json()]
        return subprocess.Popen(argv, env=env, stdout=subprocess.DEVNULL)

    def _on_started(self) -> None:
        for i in range(self.options.workers):
            self._procs.append(self._spawn_worker(f"local-{i}"))

    def _maintain_workers(self) -> None:
        for i, proc in enumerate(self._procs):
            if proc.poll() is not None and self._respawns_left > 0:
                self._respawns_left -= 1
                self._procs[i] = self._spawn_worker(f"local-respawn-{self._respawns_left}")

    def alive_workers(self) -> int:
        return sum(1 for proc in self._procs if proc.poll() is None)

    def close(self) -> None:
        super().close()  # closes sockets: workers see EOF and exit
        for proc in self._procs:
            if proc.poll() is None:
                try:
                    proc.terminate()
                except OSError:
                    pass
        deadline = time.monotonic() + 5.0
        for proc in self._procs:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self._procs = []


# ----------------------------------------------------------------------
# registry hookup
# ----------------------------------------------------------------------
def _cluster_factory(
    options: object,
    task: Callable[[object], object],
    cache: Optional[ResultCache],
) -> ClusterExecutor:
    return LocalClusterExecutor(options=options, task=task, cache=cache)


register_backend(
    "cluster",
    _cluster_factory,
    ClusterOptions,
    summary="socket-based work-stealing cluster (local worker subprocesses)",
)
