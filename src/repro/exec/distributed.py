"""Distributed executor: a socket-based work-stealing cluster backend.

The paper's methodology — many short, fully independent runs (Section
III-C defeats hysteresis exactly this way) — is embarrassingly
distributable: a run is a pure function of its
:class:`~repro.exec.spec.RunSpec`, so it can execute on any machine
and the result is verifiable by content digest.  This module exploits
that:

* :class:`Coordinator` — a threaded TCP server speaking
  :mod:`repro.exec.protocol`.  It serves a queue of pickled specs to
  any number of ``repro-worker`` processes, tracks a *lease* per
  issued task, requeues work when a lease expires or a connection
  drops (worker death), and **verifies the spec digest on every
  result** before accepting it.
* **Work stealing / straggler re-issue** — when the queue drains but
  leased tasks are still outstanding, idle workers are handed
  speculative duplicates of the oldest lease.  Determinism (equal
  spec ⇒ bit-identical result) makes this safe: whichever copy lands
  first wins, the loser is discarded as a duplicate.
* :class:`ClusterExecutor` — the :class:`~repro.exec.api.Executor`
  implementation wrapping a coordinator.  Results are merged in
  submission order, written into the existing
  :class:`~repro.exec.cache.ResultCache`, and reported through the
  existing :class:`~repro.exec.progress.RunEvent` stream — drivers
  cannot tell it apart from the serial backend except by wall clock.
* :class:`LocalClusterExecutor` — the same executor, but it spawns
  its workers as local subprocesses (``python -m repro.exec.worker``),
  which is what ``--executor cluster --workers N`` and the tests use.
  Dead local workers are respawned (bounded) while a batch is active.

Registered in the backend registry as ``"cluster"`` with
:class:`~repro.exec.api.ClusterOptions`.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from queue import Empty, Queue
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .api import Capabilities, ClusterOptions, register_backend
from .cache import ResultCache
from .executors import ExecError, _emit, _ExecutorBase
from .progress import ProgressHook
from .protocol import (
    ProtocolError,
    handshake_reply,
    recv_msg,
    resolve_task,
    send_msg,
    task_reference,
)
from .spec import run_spec, spec_digest

__all__ = [
    "Coordinator",
    "ClusterExecutor",
    "LocalClusterExecutor",
]


def digest_of(spec: object) -> str:
    """Content digest for any spec (empty when uncanonicalizable)."""
    method = getattr(spec, "digest", None)
    if callable(method):
        return method()
    try:
        return spec_digest(spec)
    except Exception:
        return ""


# ----------------------------------------------------------------------
# batch bookkeeping (pure state machine; caller holds the lock)
# ----------------------------------------------------------------------
@dataclass
class _Lease:
    lease_id: int
    index: int
    deadline: float
    conn_id: int
    stolen: bool = False
    active: bool = True


class _Batch:
    """Lease/requeue/dedup state for one ``run()`` call.

    Deliberately free of sockets and clocks (``now`` is injected) so
    the lease-expiry, digest-mismatch, and worker-death paths are unit
    testable without a network in the loop.
    """

    def __init__(
        self,
        indices: Sequence[int],
        digests: Dict[int, str],
        lease_s: float,
        max_attempts: int,
        steal: bool,
    ):
        self.pending: deque = deque(indices)
        self.todo: Set[int] = set(indices)
        self.digests = digests
        self.lease_s = lease_s
        self.max_attempts = max_attempts
        self.steal = steal
        self.done: Set[int] = set()
        self.failures: Dict[int, int] = {i: 0 for i in indices}
        self.issues: Dict[int, int] = {i: 0 for i in indices}
        self.leases: Dict[int, _Lease] = {}
        self.active_by_index: Dict[int, Set[int]] = {i: set() for i in indices}
        self.failed: Optional[str] = None
        self._next_lease_id = 0

    # -- issue ---------------------------------------------------------
    def _issue(self, index: int, now: float, conn_id: int, stolen: bool) -> _Lease:
        self._next_lease_id += 1
        lease = _Lease(
            lease_id=self._next_lease_id,
            index=index,
            deadline=now + self.lease_s,
            conn_id=conn_id,
            stolen=stolen,
        )
        self.leases[lease.lease_id] = lease
        self.active_by_index[index].add(lease.lease_id)
        self.issues[index] += 1
        return lease

    def next_task(self, now: float, conn_id: int) -> Optional[_Lease]:
        """Lease the next pending task, or steal a straggler, or None."""
        if self.failed:
            return None
        while self.pending:
            index = self.pending.popleft()
            if index in self.done or self.active_by_index[index]:
                continue  # completed late or re-issued already
            return self._issue(index, now, conn_id, stolen=False)
        if self.steal:
            candidates = [
                lease
                for lease in self.leases.values()
                if lease.active
                and lease.index not in self.done
                and len(self.active_by_index[lease.index]) == 1
            ]
            if candidates:
                straggler = min(candidates, key=lambda lease: lease.deadline)
                return self._issue(straggler.index, now, conn_id, stolen=True)
        return None

    # -- completion ----------------------------------------------------
    def _deactivate(self, lease: _Lease) -> None:
        lease.active = False
        self.active_by_index[lease.index].discard(lease.lease_id)

    def _record_loss(self, index: int, reason: str) -> None:
        """A lease was lost/rejected: requeue or fail the batch."""
        if index in self.done:
            return
        self.failures[index] += 1
        if self.failures[index] >= self.max_attempts:
            self.failed = (
                f"spec #{index} failed {self.failures[index]} time(s) "
                f"(last: {reason}); giving up"
            )
        elif not self.active_by_index[index] and index not in self.pending:
            self.pending.appendleft(index)

    def complete(
        self,
        lease_id: int,
        echoed_digest: str,
        result_digest: str,
    ) -> Tuple[str, Optional[int], int]:
        """Account one result; returns ``(status, index, attempt)``.

        status ∈ {"ok", "duplicate", "mismatch", "unknown"}.  A result
        for an *expired* lease is still accepted when the index is
        incomplete — late work is not wasted work.  Digest mismatches
        (corrupt worker, wrong library) are rejected and the spec
        requeued.
        """
        lease = self.leases.get(lease_id)
        if lease is None:
            return "unknown", None, 0
        index = lease.index
        expected = self.digests.get(index, "")
        self._deactivate(lease)
        if expected and (
            echoed_digest != expected or (result_digest and result_digest != expected)
        ):
            self._record_loss(index, "digest mismatch")
            return "mismatch", index, self.issues[index]
        if index in self.done:
            return "duplicate", index, self.issues[index]
        self.done.add(index)
        for other_id in list(self.active_by_index[index]):
            self._deactivate(self.leases[other_id])
        return "ok", index, self.issues[index]

    def task_error(self, lease_id: int, error: str, traceback_text: str) -> None:
        """A deterministic task exception: fail fast (retry is futile)."""
        lease = self.leases.get(lease_id)
        if lease is not None:
            self._deactivate(lease)
        self.failed = f"task raised {error}\n{traceback_text}"

    # -- loss detection ------------------------------------------------
    def expire(self, now: float) -> List[int]:
        """Requeue tasks whose lease deadline has passed (worker death)."""
        lost: List[int] = []
        for lease in list(self.leases.values()):
            if lease.active and lease.deadline <= now:
                self._deactivate(lease)
                if lease.index not in self.done:
                    lost.append(lease.index)
                    self._record_loss(lease.index, "lease expired")
        return lost

    def drop_connection(self, conn_id: int) -> List[int]:
        """A worker connection died: requeue its in-flight leases now."""
        lost: List[int] = []
        for lease in list(self.leases.values()):
            if lease.active and lease.conn_id == conn_id:
                self._deactivate(lease)
                if lease.index not in self.done:
                    lost.append(lease.index)
                    self._record_loss(lease.index, "worker connection lost")
        return lost

    # -- progress ------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.failed is not None or self.done >= self.todo


# ----------------------------------------------------------------------
# the coordinator (socket layer)
# ----------------------------------------------------------------------
class Coordinator:
    """Threaded TCP server feeding a :class:`_Batch` to remote workers.

    One handler thread per worker connection; completion/fatal events
    are delivered to the owning executor through ``events`` (a
    thread-safe queue), keeping cache writes and progress emission on
    the executor's thread.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, poll_s: float = 0.05):
        self.poll_s = poll_s
        self.events: Queue = Queue()
        self._lock = threading.Lock()
        self._batch: Optional[_Batch] = None
        self._specs: Dict[int, object] = {}
        self._task_ref: str = ""
        self._closing = False
        self._conn_seq = 0
        self._threads: List[threading.Thread] = []
        self._conns: Dict[int, socket.socket] = {}
        self._server = socket.create_server((host, port))
        self._server.settimeout(0.2)
        self.address: Tuple[str, int] = self._server.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-coordinator-accept", daemon=True
        )
        self._accept_thread.start()

    # -- batch lifecycle (called by the executor) ----------------------
    def start_batch(
        self,
        indices: Sequence[int],
        specs: Dict[int, object],
        digests: Dict[int, str],
        task_ref: str,
        lease_s: float,
        max_attempts: int,
        steal: bool,
    ) -> None:
        with self._lock:
            if self._batch is not None:
                raise RuntimeError("a batch is already active")
            self._specs = dict(specs)
            self._task_ref = task_ref
            self._batch = _Batch(indices, digests, lease_s, max_attempts, steal)
        # drop events left over from an abandoned batch
        while True:
            try:
                self.events.get_nowait()
            except Empty:
                break

    def end_batch(self) -> None:
        with self._lock:
            self._batch = None
            self._specs = {}

    def sweep(self) -> None:
        """Expire overdue leases; emit a fatal event if the batch died."""
        with self._lock:
            batch = self._batch
            if batch is None:
                return
            batch.expire(time.monotonic())
            failed = batch.failed
        if failed:
            self.events.put(("fatal", failed))

    def connected_workers(self) -> int:
        with self._lock:
            return len(self._conns)

    # -- server plumbing -----------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn, _addr = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # server socket closed
            self._conn_seq += 1
            conn_id = self._conn_seq
            with self._lock:
                self._conns[conn_id] = conn
            thread = threading.Thread(
                target=self._serve_conn,
                args=(conn, conn_id),
                name=f"repro-coordinator-conn{conn_id}",
                daemon=True,
            )
            with self._lock:
                self._threads.append(thread)
            thread.start()

    def _serve_conn(self, conn: socket.socket, conn_id: int) -> None:
        try:
            msg = recv_msg(conn)
            if msg is None:
                return
            reply = handshake_reply(msg)
            send_msg(conn, reply)
            if reply["type"] != "welcome":
                return
            while not self._closing:
                msg = recv_msg(conn)
                if msg is None:
                    return
                mtype = msg.get("type")
                if mtype == "get":
                    self._handle_get(conn, conn_id)
                elif mtype == "result":
                    self._handle_result(conn, msg)
                elif mtype == "error":
                    self._handle_error(conn, msg)
                else:
                    send_msg(
                        conn,
                        {"type": "reject", "reason": f"unexpected {mtype!r}"},
                    )
        except (ProtocolError, OSError):
            pass  # dead/violating peer: leases requeued below
        finally:
            with self._lock:
                self._conns.pop(conn_id, None)
                batch = self._batch
                failed = None
                if batch is not None:
                    batch.drop_connection(conn_id)
                    failed = batch.failed
            if failed:
                self.events.put(("fatal", failed))
            try:
                conn.close()
            except OSError:
                pass

    # -- message handlers ----------------------------------------------
    def _handle_get(self, conn: socket.socket, conn_id: int) -> None:
        with self._lock:
            batch = self._batch
            if self._closing:
                send_msg(conn, {"type": "shutdown"})
                return
            if batch is None or batch.finished:
                lease = None
            else:
                lease = batch.next_task(time.monotonic(), conn_id)
            spec = self._specs.get(lease.index) if lease is not None else None
            digest = (
                batch.digests.get(lease.index, "")
                if (lease is not None and batch is not None)
                else ""
            )
            task_ref = self._task_ref
            lease_s = batch.lease_s if batch is not None else 0.0
        if lease is None:
            send_msg(conn, {"type": "wait", "poll_s": self.poll_s})
            return
        send_msg(
            conn,
            {
                "type": "task",
                "task_id": lease.lease_id,
                "digest": digest,
                "spec": spec,
                "task_ref": task_ref,
                "lease_s": lease_s,
                "stolen": lease.stolen,
            },
        )

    def _handle_result(self, conn: socket.socket, msg: Dict[str, object]) -> None:
        result = msg.get("result")
        with self._lock:
            batch = self._batch
            if batch is None:
                send_msg(conn, {"type": "ack", "status": "stale"})
                return
            status, index, attempt = batch.complete(
                int(msg.get("task_id", -1)),
                str(msg.get("digest", "")),
                str(getattr(result, "spec_digest", "") or ""),
            )
            failed = batch.failed
        if status == "ok":
            self.events.put(
                (
                    "done",
                    index,
                    result,
                    float(msg.get("wall_s", 0.0)),
                    attempt,
                )
            )
        if failed:
            self.events.put(("fatal", failed))
        if status == "mismatch":
            send_msg(
                conn,
                {"type": "reject", "reason": "digest mismatch; result discarded"},
            )
        else:
            send_msg(conn, {"type": "ack", "status": status})

    def _handle_error(self, conn: socket.socket, msg: Dict[str, object]) -> None:
        with self._lock:
            batch = self._batch
            if batch is not None:
                batch.task_error(
                    int(msg.get("task_id", -1)),
                    str(msg.get("error", "unknown error")),
                    str(msg.get("traceback", "")),
                )
                failed = batch.failed
            else:
                failed = None
        if failed:
            self.events.put(("fatal", failed))
        send_msg(conn, {"type": "ack", "status": "error-recorded"})

    # -- shutdown ------------------------------------------------------
    def close(self) -> None:
        self._closing = True
        try:
            self._server.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns.values())
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        self._accept_thread.join(timeout=2.0)
        with self._lock:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout=2.0)


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------
class ClusterExecutor(_ExecutorBase):
    """Executor backed by a :class:`Coordinator` and remote workers.

    This base class spawns nothing: point external ``repro-worker``
    processes at :attr:`address` (printed by the CLI / available after
    ``start()``).  :class:`LocalClusterExecutor` adds local worker
    subprocesses for the single-machine case.

    Semantics match :class:`~repro.exec.executors.SerialExecutor`
    bit for bit: results come back in submission order, cache hits
    short-circuit execution, and equal specs produce equal results on
    any worker (verified by digest on receipt).
    """

    def __init__(
        self,
        options: Optional[ClusterOptions] = None,
        task: Callable[[object], object] = run_spec,
        cache: Optional[ResultCache] = None,
        **option_kwargs: object,
    ):
        super().__init__(task=task, cache=cache)
        if options is not None and option_kwargs:
            raise TypeError("pass ClusterOptions or option kwargs, not both")
        self.options = options if options is not None else ClusterOptions(**option_kwargs)
        if self.options.lease_s <= 0:
            raise ValueError("lease_s must be positive")
        if self.options.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        # Validate that the task survives the module:qualname round
        # trip *before* shipping work (workers import it by reference).
        self.task_ref = task_reference(task)
        if resolve_task(self.task_ref) is not task:
            raise ValueError(
                f"task {task!r} is not importable as {self.task_ref!r}; "
                "cluster tasks must be module-level callables"
            )
        self._coordinator: Optional[Coordinator] = None

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self) -> Optional[Tuple[str, int]]:
        """(host, port) the coordinator listens on, once started."""
        return self._coordinator.address if self._coordinator else None

    def start(self) -> Coordinator:
        """Bind the coordinator (idempotent); returns it."""
        if self._coordinator is None:
            self._coordinator = Coordinator(
                host=self.options.host,
                port=self.options.port,
                poll_s=self.options.poll_s,
            )
            self._on_started()
        return self._coordinator

    def _on_started(self) -> None:
        """Subclass hook: called once after the coordinator binds."""

    def _maintain_workers(self) -> None:
        """Subclass hook: called every sweep while a batch is active."""

    def close(self) -> None:
        if self._coordinator is not None:
            self._coordinator.close()
            self._coordinator = None

    def capabilities(self) -> Capabilities:
        return Capabilities(
            backend="cluster",
            parallel=True,
            distributed=True,
            deterministic=True,
            workers=self.options.workers or None,
            supports_timeout=False,
            supports_retry=True,
        )

    # -- execution -----------------------------------------------------
    def run(
        self,
        specs: Sequence[object],
        progress: Optional[ProgressHook] = None,
    ) -> List[object]:
        specs = list(specs)
        total = len(specs)
        results: List[object] = [None] * total
        completed = 0
        todo: List[int] = []
        for i, spec in enumerate(specs):
            hit = self._cache_get(spec)
            if hit is not None:
                results[i] = hit
                _emit(progress, completed, total, spec, hit, cached=True)
                completed += 1
            else:
                todo.append(i)
        if not todo:
            return results

        coordinator = self.start()
        digests = {i: digest_of(specs[i]) for i in todo}
        coordinator.start_batch(
            todo,
            {i: specs[i] for i in todo},
            digests,
            self.task_ref,
            lease_s=self.options.lease_s,
            max_attempts=self.options.max_attempts,
            steal=self.options.steal,
        )
        sweep_every = max(0.01, min(0.25, self.options.lease_s / 4.0))
        pending = len(todo)
        try:
            while pending:
                try:
                    event = coordinator.events.get(timeout=sweep_every)
                except Empty:
                    event = None
                if event is not None:
                    if event[0] == "fatal":
                        raise ExecError(event[1])
                    _kind, index, result, _wall_s, attempt = event
                    results[index] = result
                    self._cache_put(specs[index], result)
                    _emit(
                        progress,
                        completed,
                        total,
                        specs[index],
                        result,
                        cached=False,
                        attempt=attempt,
                    )
                    completed += 1
                    pending -= 1
                coordinator.sweep()
                self._maintain_workers()
        finally:
            coordinator.end_batch()
        return results


class LocalClusterExecutor(ClusterExecutor):
    """A cluster whose workers are local subprocesses.

    ``options.workers`` subprocesses run ``python -m repro.exec.worker``
    pointed at the coordinator.  A worker that dies mid-batch (crash,
    ``kill -9``) is detected two ways — connection drop (immediate
    requeue) and lease expiry (belt and braces) — and respawned while
    a batch is active, up to ``2 x workers`` respawns total.

    This is what ``repro run <artifact> --executor cluster --workers N``
    and ``make_executor("cluster", workers=N)`` construct.
    """

    def __init__(self, *args: object, **kwargs: object):
        super().__init__(*args, **kwargs)
        if self.options.workers < 1:
            raise ValueError("LocalClusterExecutor needs workers >= 1")
        self._procs: List[subprocess.Popen] = []
        self._respawns_left = 2 * self.options.workers

    # -- worker management ---------------------------------------------
    def _spawn_worker(self, name: str) -> subprocess.Popen:
        host, port = self.address
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.exec.worker",
                "--connect",
                f"{host}:{port}",
                "--name",
                name,
            ],
            env=env,
            stdout=subprocess.DEVNULL,
        )

    def _on_started(self) -> None:
        for i in range(self.options.workers):
            self._procs.append(self._spawn_worker(f"local-{i}"))

    def _maintain_workers(self) -> None:
        for i, proc in enumerate(self._procs):
            if proc.poll() is not None and self._respawns_left > 0:
                self._respawns_left -= 1
                self._procs[i] = self._spawn_worker(f"local-respawn-{self._respawns_left}")

    def alive_workers(self) -> int:
        return sum(1 for proc in self._procs if proc.poll() is None)

    def close(self) -> None:
        super().close()  # closes sockets: workers see EOF and exit
        for proc in self._procs:
            if proc.poll() is None:
                try:
                    proc.terminate()
                except OSError:
                    pass
        deadline = time.monotonic() + 5.0
        for proc in self._procs:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self._procs = []


# ----------------------------------------------------------------------
# registry hookup
# ----------------------------------------------------------------------
def _cluster_factory(
    options: object,
    task: Callable[[object], object],
    cache: Optional[ResultCache],
) -> ClusterExecutor:
    return LocalClusterExecutor(options=options, task=task, cache=cache)


register_backend(
    "cluster",
    _cluster_factory,
    ClusterOptions,
    summary="socket-based work-stealing cluster (local worker subprocesses)",
)
