"""Observability for the execution layer.

Executors emit one :class:`RunEvent` per completed run (whether
simulated or served from cache).  Anything callable with the event is
a valid hook; the module ships three:

* :class:`StderrProgress` — a single self-overwriting stderr line
  (``[exec] 12/48 runs | 3 cached | 0.8s/run | 2.1M events``), the
  thing you want when a factorial sweep takes minutes;
* :class:`Telemetry` — accumulates per-run wall-clock and
  events-processed counters into a summary dict (fed by the
  per-run telemetry the sim measurement backend extracts from
  ``Simulator.events_processed``);
* :func:`chain` — fan one event out to several hooks.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, List, Optional, TextIO

__all__ = ["RunEvent", "ProgressHook", "StderrProgress", "Telemetry", "chain"]


@dataclass(frozen=True)
class RunEvent:
    """One executor observation: a completed run, or a fault/recovery.

    ``kind`` distinguishes the streams sharing this type:

    * ``"run"`` — one completed spec (the original meaning; every
      field is populated);
    * ``"fault"`` — something went wrong but was contained (lease
      expired, digest mismatch, worker quarantined, injected fault);
      ``detail`` names it, ``index`` is -1;
    * ``"recovery"`` — the containment succeeded (spec requeued,
      breaker closed, journal resume, degradation to a local
      backend); ``detail`` names it, ``index`` is -1.

    Aggregating hooks must ignore non-``"run"`` events for run math
    (both shipped hooks do).
    """

    #: Position of the spec in the submitted batch (-1 for non-run events).
    index: int
    #: Size of the submitted batch.
    total: int
    #: Content digest of the spec (empty for non-RunSpec tasks).
    digest: str = ""
    #: Cosmetic spec label, when provided.
    tag: str = ""
    #: True when the result came from the on-disk cache.
    cached: bool = False
    #: Wall-clock seconds the run took to simulate (0 for cache hits).
    wall_s: float = 0.0
    #: Simulator events processed during the run.
    events_processed: int = 0
    #: Executor attempt number (> 1 after a crash/timeout retry).
    attempt: int = 1
    #: Event stream: "run" (default), "fault", or "recovery".
    kind: str = "run"
    #: Human-readable description for fault/recovery events.
    detail: str = ""


#: Anything that accepts a RunEvent.
ProgressHook = Callable[[RunEvent], None]


class StderrProgress:
    """Self-overwriting one-line progress report.

    Safe to reuse across batches; call :meth:`close` (or use as a
    context manager) to terminate the line.
    """

    def __init__(self, label: str = "exec", stream: Optional[TextIO] = None):
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self._seen = 0
        self._cached = 0
        self._wall = 0.0
        self._events = 0
        self._total = 0
        self._faults = 0
        self._open = False

    def __call__(self, event: RunEvent) -> None:
        if event.kind != "run":
            self._faults += event.kind == "fault"
            return
        self._seen += 1
        self._total = max(self._total, event.total)
        if event.cached:
            self._cached += 1
        self._wall += event.wall_s
        self._events += event.events_processed
        simulated = self._seen - self._cached
        per_run = self._wall / simulated if simulated else 0.0
        line = (
            f"[{self.label}] {self._seen}/{self._total} runs"
            f" | {self._cached} cached"
            f" | {per_run:.2f}s/run"
            f" | {self._events / 1e6:.1f}M events"
        )
        if self._faults:
            line += f" | {self._faults} faults"
        self.stream.write("\r" + line)
        self.stream.flush()
        self._open = True

    def close(self) -> None:
        if self._open:
            self.stream.write("\n")
            self.stream.flush()
            self._open = False

    def __enter__(self) -> "StderrProgress":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


@dataclass
class Telemetry:
    """Accumulates executor events into machine-readable totals."""

    events: List[RunEvent] = field(default_factory=list)

    def __call__(self, event: RunEvent) -> None:
        self.events.append(event)

    @property
    def run_events(self) -> List[RunEvent]:
        return [e for e in self.events if e.kind == "run"]

    @property
    def runs(self) -> int:
        return len(self.run_events)

    @property
    def cache_hits(self) -> int:
        return sum(1 for e in self.run_events if e.cached)

    @property
    def wall_s(self) -> float:
        """Total simulated wall-clock across runs (cache hits are 0)."""
        return float(sum(e.wall_s for e in self.run_events))

    @property
    def events_processed(self) -> int:
        return int(sum(e.events_processed for e in self.run_events))

    @property
    def retries(self) -> int:
        return sum(e.attempt - 1 for e in self.run_events)

    @property
    def faults(self) -> int:
        """Contained faults observed (lease expiry, mismatch, injected)."""
        return sum(1 for e in self.events if e.kind == "fault")

    @property
    def recoveries(self) -> int:
        return sum(1 for e in self.events if e.kind == "recovery")

    def summary(self) -> dict:
        simulated = self.runs - self.cache_hits
        return {
            "runs": self.runs,
            "cache_hits": self.cache_hits,
            "retries": self.retries,
            "faults": self.faults,
            "recoveries": self.recoveries,
            "wall_s": round(self.wall_s, 3),
            "events_processed": self.events_processed,
            "events_per_second": (
                round(self.events_processed / self.wall_s) if self.wall_s > 0 else 0
            ),
            "mean_run_s": round(self.wall_s / simulated, 4) if simulated else 0.0,
        }


def chain(*hooks: Optional[ProgressHook]) -> ProgressHook:
    """Combine several hooks (``None`` entries are skipped)."""
    live = [h for h in hooks if h is not None]

    def fanout(event: RunEvent) -> None:
        for hook in live:
            hook(event)

    return fanout
