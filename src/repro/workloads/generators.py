"""Configurable request-characteristic generators.

The paper stresses that workload characteristics (GET/SET ratio,
request-size distribution) strongly affect system performance, and that
Treadmill therefore accepts a JSON configuration describing them
(Section III-A, "Configurable workload").  This module provides the
distribution vocabulary that configuration speaks: small, composable
samplers constructed either directly or from a JSON-style dict via
:func:`distribution_from_spec`.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, List, Sequence

import numpy as np

__all__ = [
    "Distribution",
    "Constant",
    "Uniform",
    "Exponential",
    "Lognormal",
    "Discrete",
    "GeneralizedPareto",
    "distribution_from_spec",
    "OperationMix",
]


class Distribution(abc.ABC):
    """A sampler of non-negative values."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value."""

    def sample_block(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` values at once.

        **Batching invariant:** bit-identical to ``n`` sequential
        :meth:`sample` calls on the same stream (numpy array draws
        consume the bit stream one variate at a time in order), so
        block size never changes results.  Subclasses override with a
        vectorized draw; this fallback loops.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        return np.array([self.sample(rng) for _ in range(n)], dtype=float)

    @abc.abstractmethod
    def mean(self) -> float:
        """Analytic mean (used for utilization sizing)."""

    @abc.abstractmethod
    def spec(self) -> Dict:
        """JSON-serializable description round-trippable through
        :func:`distribution_from_spec`."""


class Constant(Distribution):
    """Always the same value."""

    def __init__(self, value: float):
        if value < 0:
            raise ValueError("value must be non-negative")
        self.value = float(value)

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def sample_block(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n < 1:
            raise ValueError("n must be >= 1")
        return np.full(n, self.value)

    def mean(self) -> float:
        return self.value

    def spec(self) -> Dict:
        return {"type": "constant", "value": self.value}


class Uniform(Distribution):
    """Uniform on [low, high]."""

    def __init__(self, low: float, high: float):
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def sample_block(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n < 1:
            raise ValueError("n must be >= 1")
        return rng.uniform(self.low, self.high, n)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def spec(self) -> Dict:
        return {"type": "uniform", "low": self.low, "high": self.high}


class Exponential(Distribution):
    """Exponential with the given mean."""

    def __init__(self, mean: float):
        if mean <= 0:
            raise ValueError("mean must be positive")
        self._mean = float(mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._mean))

    def sample_block(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n < 1:
            raise ValueError("n must be >= 1")
        return rng.exponential(self._mean, n)

    def mean(self) -> float:
        return self._mean

    def spec(self) -> Dict:
        return {"type": "exponential", "mean": self._mean}


class Lognormal(Distribution):
    """Lognormal parameterized by its (linear-space) mean and sigma.

    Value sizes in production key-value stores are heavy-tailed; the
    paper's workload-analysis citation (Atikoglu et al.) fits them
    lognormally, so this is the default value-size family.
    """

    def __init__(self, mean: float, sigma: float):
        if mean <= 0 or sigma < 0:
            raise ValueError("need mean > 0 and sigma >= 0")
        self._mean = float(mean)
        self.sigma = float(sigma)
        # E[lognormal(mu, sigma)] = exp(mu + sigma^2/2)
        self._mu = math.log(self._mean) - 0.5 * self.sigma**2

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self._mu, self.sigma))

    def sample_block(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n < 1:
            raise ValueError("n must be >= 1")
        return rng.lognormal(self._mu, self.sigma, n)

    def mean(self) -> float:
        return self._mean

    def spec(self) -> Dict:
        return {"type": "lognormal", "mean": self._mean, "sigma": self.sigma}


class GeneralizedPareto(Distribution):
    """Pareto-tailed sizes for stress configurations.

    ``scale * (U^(-1/alpha) - 1)`` with ``alpha > 1`` so the mean
    exists.
    """

    def __init__(self, scale: float, alpha: float):
        if scale <= 0 or alpha <= 1:
            raise ValueError("need scale > 0 and alpha > 1 (finite mean)")
        self.scale = float(scale)
        self.alpha = float(alpha)

    def sample(self, rng: np.random.Generator) -> float:
        u = rng.random()
        return self.scale * (u ** (-1.0 / self.alpha) - 1.0)

    def sample_block(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n < 1:
            raise ValueError("n must be >= 1")
        # Batch only the uniform draws.  The power transform must stay
        # scalar: numpy's vectorized ``**`` uses SIMD code paths that
        # differ from C ``pow`` by many ulps (and can vary with array
        # length), which would break the bit-identical batching
        # invariant this method promises.
        scale, exp = self.scale, -1.0 / self.alpha
        return np.array(
            [scale * (u**exp - 1.0) for u in rng.random(n).tolist()], dtype=float
        )

    def mean(self) -> float:
        return self.scale / (self.alpha - 1.0)

    def spec(self) -> Dict:
        return {"type": "pareto", "scale": self.scale, "alpha": self.alpha}


class Discrete(Distribution):
    """Weighted choice over a fixed set of values."""

    def __init__(self, values: Sequence[float], weights: Sequence[float]):
        if len(values) != len(weights) or not values:
            raise ValueError("values and weights must be equal-length and non-empty")
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError("weights must be non-negative with positive sum")
        self.values = [float(v) for v in values]
        total = float(sum(weights))
        self.weights = [float(w) / total for w in weights]
        self._cum = np.cumsum(self.weights)

    def sample(self, rng: np.random.Generator) -> float:
        u = rng.random()
        idx = int(np.searchsorted(self._cum, u, side="right"))
        return self.values[min(idx, len(self.values) - 1)]

    def sample_block(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n < 1:
            raise ValueError("n must be >= 1")
        idx = np.searchsorted(self._cum, rng.random(n), side="right")
        np.clip(idx, 0, len(self.values) - 1, out=idx)
        return np.asarray(self.values, dtype=float)[idx]

    def mean(self) -> float:
        return float(sum(v * w for v, w in zip(self.values, self.weights)))

    def spec(self) -> Dict:
        return {"type": "discrete", "values": self.values, "weights": self.weights}


_SPEC_BUILDERS = {
    "constant": lambda s: Constant(s["value"]),
    "uniform": lambda s: Uniform(s["low"], s["high"]),
    "exponential": lambda s: Exponential(s["mean"]),
    "lognormal": lambda s: Lognormal(s["mean"], s["sigma"]),
    "pareto": lambda s: GeneralizedPareto(s["scale"], s["alpha"]),
    "discrete": lambda s: Discrete(s["values"], s["weights"]),
}


def distribution_from_spec(spec: Dict) -> Distribution:
    """Build a :class:`Distribution` from a JSON-style dict.

    Example::

        distribution_from_spec({"type": "lognormal", "mean": 120, "sigma": 1.2})
    """
    if not isinstance(spec, dict) or "type" not in spec:
        raise ValueError(f"distribution spec must be a dict with a 'type': {spec!r}")
    kind = spec["type"]
    builder = _SPEC_BUILDERS.get(kind)
    if builder is None:
        known = ", ".join(sorted(_SPEC_BUILDERS))
        raise ValueError(f"unknown distribution type {kind!r} (known: {known})")
    try:
        return builder(spec)
    except KeyError as exc:
        raise ValueError(f"distribution spec {spec!r} missing field {exc}") from None


class OperationMix:
    """A weighted mix of operation names (e.g. GET 90% / SET 10%)."""

    def __init__(self, weights: Dict[str, float]):
        if not weights:
            raise ValueError("operation mix must not be empty")
        if any(w < 0 for w in weights.values()) or sum(weights.values()) <= 0:
            raise ValueError("weights must be non-negative with positive sum")
        total = float(sum(weights.values()))
        self.ops: List[str] = sorted(weights)
        self.probs: List[float] = [weights[op] / total for op in self.ops]
        self._cum = np.cumsum(self.probs)

    def sample(self, rng: np.random.Generator) -> str:
        u = rng.random()
        idx = int(np.searchsorted(self._cum, u, side="right"))
        return self.ops[min(idx, len(self.ops) - 1)]

    def sample_block(self, rng: np.random.Generator, n: int) -> List[str]:
        """``n`` operation names; bit-identical to sequential samples."""
        if n < 1:
            raise ValueError("n must be >= 1")
        idx = np.searchsorted(self._cum, rng.random(n), side="right")
        ops = self.ops
        last = len(ops) - 1
        return [ops[i if i <= last else last] for i in idx]

    def probability(self, op: str) -> float:
        try:
            return self.probs[self.ops.index(op)]
        except ValueError:
            return 0.0

    def spec(self) -> Dict[str, float]:
        return {op: p for op, p in zip(self.ops, self.probs)}
