"""A web-search leaf-node workload — the generality demonstration.

The paper's design goal: "Each integration takes less than 200 lines
of code."  This module is that demonstration for our framework — a
third service model, materially different from the key-value pair, in
well under 200 lines:

* every query scans a number of posting lists (CPU-heavy, strongly
  frequency-sensitive — like mcrouter's parse, but bigger);
* service time is heavy-tailed in the *query*, not the noise: a small
  fraction of queries touch many terms (the classic search-leaf
  "expensive query" tail);
* responses are small and uniform (a scored doc-id list), so the
  network is never the story.

It plugs into every load tester, the measurement procedure, and the
attribution pipeline with zero changes elsewhere.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from .base import Request, Workload, WorkProfile
from .generators import Distribution, GeneralizedPareto
from .sampling import BlockStream

__all__ = ["SearchLeafWorkload"]


class SearchLeafWorkload(Workload):
    """Posting-list scan model of a search leaf node.

    Parameters
    ----------
    terms:
        Distribution of the number of query terms (integer-rounded).
    scan_us_per_term:
        Frequency-scalable scan cost per term at base frequency.
    mem_accesses_per_term:
        Index pages touched per term (priced by the NUMA model; the
        index is large, so this workload is memory-hungrier than
        memcached per unit of CPU).
    expensive_query_fraction / expensive_factor:
        A fraction of queries hit dense posting lists and cost a
        multiple of the normal scan — the workload-intrinsic tail.
    """

    name = "searchleaf"

    def __init__(
        self,
        terms: Optional[Distribution] = None,
        scan_us_per_term: float = 2.4,
        mem_accesses_per_term: float = 6.0,
        expensive_query_fraction: float = 0.02,
        expensive_factor: float = 6.0,
        fixed_us: float = 1.0,
        service_noise_sigma: float = 0.4,
    ):
        if not 0.0 <= expensive_query_fraction <= 1.0:
            raise ValueError("expensive_query_fraction must be in [0, 1]")
        if expensive_factor < 1.0:
            raise ValueError("expensive_factor must be >= 1")
        self.terms = terms or GeneralizedPareto(scale=4.0, alpha=3.0)
        self.scan_us_per_term = scan_us_per_term
        self.mem_accesses_per_term = mem_accesses_per_term
        self.expensive_query_fraction = expensive_query_fraction
        self.expensive_factor = expensive_factor
        self.fixed_us = fixed_us
        self.service_noise_sigma = service_noise_sigma
        self._noise_mu = -0.5 * service_noise_sigma**2
        # Effective mean term count after the integer floor
        # (max(1, round(x)) raises the mean of small-valued
        # distributions); estimated once, deterministically, so the
        # utilization->rate conversion stays honest.
        probe = np.random.default_rng(0xC0FFEE)
        draws = [max(1, int(round(self.terms.sample(probe)))) for _ in range(20_000)]
        self._effective_mean_terms = float(np.mean(draws))

    def sample_request(
        self, rng: np.random.Generator, req_id: int, conn_id: int
    ) -> Request:
        n_terms = max(1, int(round(self.terms.sample(rng))))
        return Request(
            req_id=req_id,
            conn_id=conn_id,
            op="query",
            key_size=n_terms * 8,  # stands in for the query string
            value_size=n_terms,  # reused as the term count downstream
            request_bytes=64 + n_terms * 8,
            response_bytes=256,  # fixed-size scored doc-id list
        )

    def request_sampler(
        self,
        rng: np.random.Generator,
        stream_factory: Optional[Callable[[str], np.random.Generator]] = None,
        block: int = 512,
    ) -> Callable[[int, int], Request]:
        """Batched term-count drawing (the only client-side draw).

        The server-side :meth:`profile` stays scalar: its expensive-
        query coin flip and conditional noise draw interleave two
        distributions on one stream, which is not exactly batchable.
        """
        if stream_factory is None:
            return super().request_sampler(rng, None, block)
        terms_s = BlockStream(self.terms.sample_block, stream_factory("terms"), block)
        terms_next = terms_s.next

        def sample(req_id: int, conn_id: int) -> Request:
            n_terms = int(round(terms_next()))
            if n_terms < 1:
                n_terms = 1
            return Request(
                req_id=req_id,
                conn_id=conn_id,
                op="query",
                key_size=n_terms * 8,
                value_size=n_terms,
                request_bytes=64 + n_terms * 8,
                response_bytes=256,
            )

        sample.streams = (terms_s,)
        return sample

    def profile(self, request: Request, rng: np.random.Generator) -> WorkProfile:
        n_terms = max(1, request.value_size)
        work = self.scan_us_per_term * n_terms
        if rng.random() < self.expensive_query_fraction:
            work *= self.expensive_factor
        if self.service_noise_sigma > 0:
            work *= float(rng.lognormal(self._noise_mu, self.service_noise_sigma))
        return WorkProfile(
            work_us=work,
            fixed_us=self.fixed_us,
            mem_accesses=self.mem_accesses_per_term * n_terms,
        )

    def mean_service_us(self) -> float:
        mean_terms = self._effective_mean_terms
        expensive = 1.0 + self.expensive_query_fraction * (self.expensive_factor - 1.0)
        work = self.scan_us_per_term * mean_terms * expensive
        approx_mem = self.mem_accesses_per_term * mean_terms * 0.12 + 0.3
        return work + self.fixed_us + approx_mem

    def describe(self) -> Dict:
        return {
            "name": self.name,
            "terms": self.terms.spec(),
            "scan_us_per_term": self.scan_us_per_term,
            "expensive_query_fraction": self.expensive_query_fraction,
            "mean_service_us": round(self.mean_service_us(), 2),
        }
