"""Workload abstractions: requests, work profiles, service models.

A *workload* describes the service under test (memcached, mcrouter,
...) as two pure functions:

* :meth:`Workload.sample_request` — draw the next request a client
  would send (operation mix, key/value sizes, wire sizes), and
* :meth:`Workload.profile` — the server-side cost of one request,
  expressed as a :class:`WorkProfile` of frequency-scalable compute,
  fixed overhead, buffer memory accesses, and (for proxy workloads
  like mcrouter) an asynchronous backend wait between two compute
  phases.

The split keeps load testers workload-agnostic — the paper's
"generality" design goal, where integrating a new service into
Treadmill takes under 200 lines.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

__all__ = ["Request", "WorkProfile", "Workload"]


class Request:
    """One request/response pair with its full timestamp trail.

    Timestamps (all virtual microseconds, ``nan`` until stamped):

    ==================  =====================================================
    ``t_user_send``     load tester intended/issued the request (user space)
    ``t_nic_send``      request left the client NIC (tcpdump TX point)
    ``t_server_nic_in`` request arrived at the server NIC
    ``t_service_start`` worker thread began servicing
    ``t_service_end``   worker thread finished servicing
    ``t_server_nic_out`` response left the server NIC
    ``t_nic_recv``      response arrived at the client NIC (tcpdump RX point)
    ``t_user_recv``     load tester's user-space callback ran
    ==================  =====================================================

    The latency decompositions of the paper's figures are all derived
    properties of this trail.
    """

    __slots__ = (
        "req_id",
        "conn_id",
        "client_name",
        "op",
        "key_size",
        "value_size",
        "request_bytes",
        "response_bytes",
        "t_user_send",
        "t_nic_send",
        "t_server_nic_in",
        "t_service_start",
        "t_service_end",
        "t_server_nic_out",
        "t_nic_recv",
        "t_user_recv",
    )

    def __init__(
        self,
        req_id: int,
        conn_id: int,
        op: str,
        key_size: int = 0,
        value_size: int = 0,
        request_bytes: int = 64,
        response_bytes: int = 64,
        client_name: str = "",
    ):
        self.req_id = req_id
        self.conn_id = conn_id
        self.client_name = client_name
        self.op = op
        self.key_size = key_size
        self.value_size = value_size
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        nan = float("nan")
        self.t_user_send = nan
        self.t_nic_send = nan
        self.t_server_nic_in = nan
        self.t_service_start = nan
        self.t_service_end = nan
        self.t_server_nic_out = nan
        self.t_nic_recv = nan
        self.t_user_recv = nan

    # -- derived latencies (Figs. 3, 5, 6) ------------------------------
    @property
    def user_latency_us(self) -> float:
        """End-to-end latency as the load tester observes it."""
        return self.t_user_recv - self.t_user_send

    @property
    def nic_latency_us(self) -> float:
        """Ground-truth latency as tcpdump observes it at the client NIC."""
        return self.t_nic_recv - self.t_nic_send

    @property
    def server_latency_us(self) -> float:
        """Time between the request reaching and leaving the server NIC."""
        return self.t_server_nic_out - self.t_server_nic_in

    @property
    def network_latency_us(self) -> float:
        """Both directions of wire/switch time."""
        return (self.t_server_nic_in - self.t_nic_send) + (
            self.t_nic_recv - self.t_server_nic_out
        )

    @property
    def client_latency_us(self) -> float:
        """Client-side time: kernel path plus any client queueing."""
        return (self.t_nic_send - self.t_user_send) + (
            self.t_user_recv - self.t_nic_recv
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Request {self.req_id} conn={self.conn_id} op={self.op} "
            f"user_latency={self.user_latency_us:.1f}us>"
        )


@dataclass
class WorkProfile:
    """Server-side cost of one request.

    ``work_us`` scales inversely with core frequency; ``fixed_us`` does
    not; ``mem_accesses`` is priced by the NUMA model at dispatch time.
    Proxy workloads set ``backend_wait_us`` (an off-core asynchronous
    wait) and ``post_work_us`` (the second on-core phase that assembles
    the response when the backend answers).
    """

    work_us: float
    fixed_us: float = 0.0
    mem_accesses: float = 0.0
    backend_wait_us: float = 0.0
    post_work_us: float = 0.0

    def __post_init__(self) -> None:
        # One profile is built per simulated request; direct field
        # reads keep this validation off the profiler's radar.
        if (
            self.work_us < 0
            or self.fixed_us < 0
            or self.mem_accesses < 0
            or self.backend_wait_us < 0
            or self.post_work_us < 0
        ):
            raise ValueError("WorkProfile costs must be non-negative")

    @property
    def total_on_core_us(self) -> float:
        """On-core time at base frequency, excluding memory accesses."""
        return self.work_us + self.fixed_us + self.post_work_us


class Workload(abc.ABC):
    """Service model interface.  Implementations must be stateless with
    respect to individual requests (all randomness flows through the
    supplied generator) so that experiments are reproducible."""

    #: Human-readable workload name (used in reports and stream names).
    name: str = "abstract"

    @abc.abstractmethod
    def sample_request(
        self, rng: np.random.Generator, req_id: int, conn_id: int
    ) -> Request:
        """Draw the next request a client sends on ``conn_id``."""

    @abc.abstractmethod
    def profile(self, request: Request, rng: np.random.Generator) -> WorkProfile:
        """Server-side cost of ``request``."""

    def request_sampler(
        self,
        rng: np.random.Generator,
        stream_factory: Optional[Callable[[str], np.random.Generator]] = None,
        block: int = 512,
    ) -> Callable[[int, int], Request]:
        """A ``(req_id, conn_id) -> Request`` closure for the hot path.

        With ``stream_factory`` (a ``purpose -> Generator`` map giving
        each request parameter its own dedicated stream), workloads
        override this to draw parameters in pre-sampled blocks — see
        :class:`repro.workloads.sampling.BlockStream` for the
        invariant that makes block size irrelevant to results.  This
        default ignores the factory and wraps the scalar
        :meth:`sample_request` on ``rng``, preserving the legacy
        single-stream draw sequence exactly.

        The returned callable carries a ``streams`` attribute (tuple
        of its ``BlockStream`` objects, empty here) for batch-hit-rate
        diagnostics.
        """
        def sample(req_id: int, conn_id: int) -> Request:
            return self.sample_request(rng, req_id, conn_id)

        sample.streams = ()
        return sample

    def profile_sampler(
        self, rng: np.random.Generator, block: int = 512
    ) -> Callable[[Request], WorkProfile]:
        """A ``Request -> WorkProfile`` closure for the server hot path.

        Workloads whose per-request randomness is a single homogeneous
        draw override this to batch it from the *same* ``rng`` —
        bit-identical to the scalar path.  Workloads with
        value-dependent or interleaved draws must keep this scalar
        default (batching would change the bit-stream split).
        """
        def prof(request: Request) -> WorkProfile:
            return self.profile(request, rng)

        prof.streams = ()
        return prof

    @abc.abstractmethod
    def mean_service_us(self) -> float:
        """Approximate mean on-core service time at base frequency.

        Used only to translate a target utilization into an arrival
        rate; the actual utilization is whatever the simulation
        produces.
        """

    def describe(self) -> dict:
        """Summary of the workload configuration for reports."""
        return {"name": self.name}
