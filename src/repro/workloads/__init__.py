"""Services under test: memcached and mcrouter models plus the
JSON-configurable request-characteristic generators."""

from .base import Request, Workload, WorkProfile
from .generators import (
    Constant,
    Discrete,
    Distribution,
    Exponential,
    GeneralizedPareto,
    Lognormal,
    OperationMix,
    Uniform,
    distribution_from_spec,
)
from .memcached import MemcachedWorkload
from .mcrouter import McrouterWorkload
from .searchleaf import SearchLeafWorkload

__all__ = [
    "Request",
    "Workload",
    "WorkProfile",
    "Constant",
    "Discrete",
    "Distribution",
    "Exponential",
    "GeneralizedPareto",
    "Lognormal",
    "OperationMix",
    "Uniform",
    "distribution_from_spec",
    "MemcachedWorkload",
    "McrouterWorkload",
    "SearchLeafWorkload",
]
