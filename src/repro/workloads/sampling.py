"""Pre-sampled random blocks for the simulation hot path.

Drawing one variate per request through numpy's Generator costs far
more in call overhead than in actual bit-stream work.  A
:class:`BlockStream` amortizes that overhead by drawing a *block* of
variates at a time and handing them out one by one.

**Batching invariant.** A block stream is only ever built on a
*homogeneous* stream: one ``np.random.Generator`` consumed exclusively
through one distribution.  numpy draws array variates from the bit
stream one at a time in order, so a block of ``n`` is bit-identical to
``n`` sequential scalar draws — and, by induction, block size never
changes the value sequence.  (Heterogeneous draw sequences — e.g. a
uniform and a lognormal interleaved on one generator — are *not*
batchable this way, because rejection-style samplers consume a
value-dependent number of bits; those paths keep their scalar form.)
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Union

import numpy as np

__all__ = ["BlockStream"]


class BlockStream:
    """Hands out variates one at a time from pre-sampled blocks.

    Parameters
    ----------
    sample_block:
        ``(rng, n) -> sequence`` drawing ``n`` variates; typically a
        bound ``Distribution.sample_block`` or
        ``ArrivalProcess.next_gaps_us``.
    rng:
        The dedicated generator this stream owns.  Nothing else may
        draw from it, or the batching invariant breaks.
    block:
        Variates per refill.  Any value >= 1 yields the same sequence
        (the invariant); larger blocks amortize more call overhead.
    """

    __slots__ = ("_sample_block", "_rng", "_block", "_buf", "_idx", "refills")

    def __init__(
        self,
        sample_block: Callable[[np.random.Generator, int], Sequence],
        rng: np.random.Generator,
        block: int = 512,
    ):
        if block < 1:
            raise ValueError("block must be >= 1")
        self._sample_block = sample_block
        self._rng = rng
        self._block = int(block)
        self._buf: List = []
        self._idx = 0
        #: Number of block draws performed (for hit-rate diagnostics).
        self.refills = 0

    def next(self) -> Union[float, str]:
        """The next variate, refilling the buffer when exhausted.

        Values come back as native Python objects (``.tolist()`` on the
        drawn array), matching what ``float(rng.<dist>())`` produced on
        the scalar path bit-for-bit.
        """
        idx = self._idx
        buf = self._buf
        if idx >= len(buf):
            out = self._sample_block(self._rng, self._block)
            buf = self._buf = out.tolist() if isinstance(out, np.ndarray) else list(out)
            idx = 0
            self.refills += 1
        self._idx = idx + 1
        return buf[idx]

    @property
    def draws(self) -> int:
        """Variates handed out so far (derived, not counted per call)."""
        if self.refills == 0:
            return 0
        return (self.refills - 1) * self._block + self._idx

    @property
    def hit_rate(self) -> float:
        """Fraction of ``next()`` calls served without touching the RNG."""
        n = self.draws
        return 1.0 - (self.refills / n) if n else 0.0
