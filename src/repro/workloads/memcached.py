"""Memcached service model.

The paper's primary workload: an in-memory key-value cache with
microsecond service times, dominated by hash-table lookup, slab/buffer
memory accesses, and protocol handling.  The model below prices one
request as

* a frequency-scalable compute component (protocol parse + hash walk +
  per-byte copy cost),
* a set of connection-buffer memory accesses (priced by the NUMA model
  at dispatch time — this is where the ``numa`` factor bites), and
* a small fixed component (syscalls, locking).

Default sizes follow the production characterization the paper cites
(Atikoglu et al., SIGMETRICS'12): short keys, lognormal values, a
GET-dominated mix.  Parameters are calibrated so that at ~70%
utilization the simulated p50/p99 land in the paper's Table IV range
(intercept 65 us / 355 us) — see EXPERIMENTS.md for measured values.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from .base import Request, Workload, WorkProfile
from .generators import Distribution, Lognormal, OperationMix, Uniform
from .sampling import BlockStream

__all__ = ["MemcachedWorkload"]

#: Wire overhead of the memcached binary protocol per message.
_PROTOCOL_OVERHEAD_BYTES = 48


class MemcachedWorkload(Workload):
    """GET/SET key-value service model.

    Parameters
    ----------
    get_fraction:
        Probability a request is a GET (paper-cited production mixes
        are GET-heavy; default 0.9).
    key_size / value_size:
        Size distributions in bytes.
    base_work_us:
        Frequency-scalable compute floor per request (parse, hash,
        dispatch) before per-byte costs.
    work_per_kb_us:
        Additional compute per KiB of value moved.
    mem_accesses_base / mem_accesses_per_kb:
        Connection-buffer memory accesses priced by the NUMA model.
    set_work_factor:
        SETs do more work than GETs (allocation, LRU update).
    service_noise_sigma:
        Lognormal multiplicative noise on compute work (cache/branch
        luck), giving the within-run service-time variance an M/G/1
        needs.
    """

    name = "memcached"

    def __init__(
        self,
        get_fraction: float = 0.9,
        key_size: Optional[Distribution] = None,
        value_size: Optional[Distribution] = None,
        base_work_us: float = 5.0,
        work_per_kb_us: float = 3.0,
        mem_accesses_base: float = 10.0,
        mem_accesses_per_kb: float = 8.0,
        set_work_factor: float = 1.25,
        fixed_us: float = 0.6,
        service_noise_sigma: float = 0.8,
    ):
        if not 0.0 <= get_fraction <= 1.0:
            raise ValueError("get_fraction must be in [0, 1]")
        if service_noise_sigma < 0:
            raise ValueError("service_noise_sigma must be non-negative")
        self.mix = OperationMix({"get": get_fraction, "set": 1.0 - get_fraction})
        self.key_size = key_size or Uniform(16, 40)
        self.value_size = value_size or Lognormal(mean=160.0, sigma=1.0)
        self.base_work_us = base_work_us
        self.work_per_kb_us = work_per_kb_us
        self.mem_accesses_base = mem_accesses_base
        self.mem_accesses_per_kb = mem_accesses_per_kb
        self.set_work_factor = set_work_factor
        self.fixed_us = fixed_us
        self.service_noise_sigma = service_noise_sigma
        # Lognormal(mu, sigma) has mean exp(mu + s^2/2); offset mu so the
        # noise multiplier has mean exactly 1 and does not shift the
        # calibrated utilization.
        self._noise_mu = -0.5 * service_noise_sigma**2

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def sample_request(
        self, rng: np.random.Generator, req_id: int, conn_id: int
    ) -> Request:
        op = self.mix.sample(rng)
        key = int(round(self.key_size.sample(rng)))
        value = int(round(self.value_size.sample(rng)))
        key = max(1, key)
        value = max(1, value)
        if op == "get":
            request_bytes = _PROTOCOL_OVERHEAD_BYTES + key
            response_bytes = _PROTOCOL_OVERHEAD_BYTES + value
        else:  # set carries the value out, gets a small ack back
            request_bytes = _PROTOCOL_OVERHEAD_BYTES + key + value
            response_bytes = _PROTOCOL_OVERHEAD_BYTES
        return Request(
            req_id=req_id,
            conn_id=conn_id,
            op=op,
            key_size=key,
            value_size=value,
            request_bytes=request_bytes,
            response_bytes=response_bytes,
        )

    def request_sampler(
        self,
        rng: np.random.Generator,
        stream_factory: Optional[Callable[[str], np.random.Generator]] = None,
        block: int = 512,
    ) -> Callable[[int, int], Request]:
        """Batched request drawing: op / key / value each get their own
        dedicated stream and refill in blocks.  Requires
        ``stream_factory``; without it the scalar single-stream path is
        used (bit-identical to pre-batching behaviour)."""
        if stream_factory is None:
            return super().request_sampler(rng, None, block)
        op_s = BlockStream(self.mix.sample_block, stream_factory("op"), block)
        key_s = BlockStream(self.key_size.sample_block, stream_factory("key"), block)
        value_s = BlockStream(
            self.value_size.sample_block, stream_factory("value"), block
        )
        op_next, key_next, value_next = op_s.next, key_s.next, value_s.next

        def sample(req_id: int, conn_id: int) -> Request:
            op = op_next()
            key = int(round(key_next()))
            value = int(round(value_next()))
            if key < 1:
                key = 1
            if value < 1:
                value = 1
            if op == "get":
                request_bytes = _PROTOCOL_OVERHEAD_BYTES + key
                response_bytes = _PROTOCOL_OVERHEAD_BYTES + value
            else:
                request_bytes = _PROTOCOL_OVERHEAD_BYTES + key + value
                response_bytes = _PROTOCOL_OVERHEAD_BYTES
            return Request(
                req_id=req_id,
                conn_id=conn_id,
                op=op,
                key_size=key,
                value_size=value,
                request_bytes=request_bytes,
                response_bytes=response_bytes,
            )

        sample.streams = (op_s, key_s, value_s)
        return sample

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------
    def profile(self, request: Request, rng: np.random.Generator) -> WorkProfile:
        kb = request.value_size / 1024.0
        work = self.base_work_us + self.work_per_kb_us * kb
        if request.op == "set":
            work *= self.set_work_factor
        if self.service_noise_sigma > 0:
            work *= float(rng.lognormal(self._noise_mu, self.service_noise_sigma))
        accesses = self.mem_accesses_base + self.mem_accesses_per_kb * kb
        return WorkProfile(work_us=work, fixed_us=self.fixed_us, mem_accesses=accesses)

    def profile_sampler(
        self, rng: np.random.Generator, block: int = 512
    ) -> Callable[[Request], WorkProfile]:
        """Batched service-noise drawing on the *same* stream.

        The per-request randomness here is a single lognormal draw, so
        the stream stays homogeneous and blocks of any size reproduce
        the scalar draw sequence bit-for-bit.
        """
        if self.service_noise_sigma <= 0:
            return super().profile_sampler(rng, block)
        mu, sigma = self._noise_mu, self.service_noise_sigma
        noise_s = BlockStream(lambda r, n: r.lognormal(mu, sigma, n), rng, block)
        noise_next = noise_s.next
        base_work = self.base_work_us
        per_kb = self.work_per_kb_us
        set_factor = self.set_work_factor
        mem_base = self.mem_accesses_base
        mem_per_kb = self.mem_accesses_per_kb
        fixed = self.fixed_us

        def prof(request: Request) -> WorkProfile:
            kb = request.value_size / 1024.0
            work = base_work + per_kb * kb
            if request.op == "set":
                work *= set_factor
            work *= noise_next()
            return WorkProfile(
                work_us=work,
                fixed_us=fixed,
                mem_accesses=mem_base + mem_per_kb * kb,
            )

        prof.streams = (noise_s,)
        return prof

    def mean_service_us(self) -> float:
        mean_kb = self.value_size.mean() / 1024.0
        get_p = self.mix.probability("get")
        work = self.base_work_us + self.work_per_kb_us * mean_kb
        work *= get_p + (1.0 - get_p) * self.set_work_factor
        # Memory accesses priced at a typical mid-load mixed-locality
        # cost; this only seeds the utilization->rate conversion.
        accesses = self.mem_accesses_base + self.mem_accesses_per_kb * mean_kb
        approx_mem = accesses * 0.12 + 0.5
        return work + self.fixed_us + approx_mem

    def describe(self) -> Dict:
        return {
            "name": self.name,
            "mix": self.mix.spec(),
            "key_size": self.key_size.spec(),
            "value_size": self.value_size.spec(),
            "base_work_us": self.base_work_us,
            "mean_service_us": round(self.mean_service_us(), 2),
        }
