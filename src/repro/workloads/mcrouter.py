"""Mcrouter service model.

The paper's second workload: Facebook's memcached protocol router.
Per its description (and Finding 8), mcrouter's cost structure differs
from memcached's in ways that matter to the attribution results:

* A large fraction of its work is **deserializing the request from
  network packets** — pure CPU, so strongly frequency-sensitive.
  This is why Turbo Boost helps mcrouter disproportionately at low
  load (thermal headroom available) in Fig. 10.
* After routing, the request is **forwarded to a backend** memcached
  pool; the router thread waits asynchronously and then runs a second,
  shorter on-core phase assembling the response.
* It touches less connection-buffer memory per request than memcached
  (it proxies rather than stores), so the ``numa`` factor has a
  smaller effect — compare Fig. 10 against Fig. 8.

Absolute latencies are lower than memcached's in the paper's Fig. 9
(y-axis to ~200 us vs ~600 us); the backend wait is off-core, so the
router reaches the same *CPU* utilization at a lower end-to-end
latency.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from .base import Request, Workload, WorkProfile
from .generators import Distribution, Exponential, Lognormal, OperationMix, Uniform
from .sampling import BlockStream

__all__ = ["McrouterWorkload"]

_PROTOCOL_OVERHEAD_BYTES = 48


class McrouterWorkload(Workload):
    """Protocol-router model: deserialize -> route -> backend -> reply.

    Parameters
    ----------
    deserialize_us_per_kb:
        Frequency-scalable parse cost per KiB of request payload; the
        dominant, turbo-sensitive term.
    route_work_us:
        Frequency-scalable routing/hashing floor per request.
    backend_wait:
        Distribution of the off-core backend round-trip.
    reply_work_us:
        Second on-core phase (response assembly) at base frequency.
    """

    name = "mcrouter"

    def __init__(
        self,
        get_fraction: float = 0.9,
        key_size: Optional[Distribution] = None,
        value_size: Optional[Distribution] = None,
        deserialize_us_per_kb: float = 11.0,
        route_work_us: float = 3.2,
        reply_work_us: float = 1.2,
        backend_wait: Optional[Distribution] = None,
        mem_accesses_base: float = 3.0,
        fixed_us: float = 0.8,
        service_noise_sigma: float = 0.6,
        backend_pool=None,
    ):
        if not 0.0 <= get_fraction <= 1.0:
            raise ValueError("get_fraction must be in [0, 1]")
        self.mix = OperationMix({"get": get_fraction, "set": 1.0 - get_fraction})
        self.key_size = key_size or Uniform(16, 40)
        self.value_size = value_size or Lognormal(mean=160.0, sigma=1.0)
        self.deserialize_us_per_kb = deserialize_us_per_kb
        self.route_work_us = route_work_us
        self.reply_work_us = reply_work_us
        self.backend_wait = backend_wait or Exponential(mean=7.0)
        #: Optional repro.sim.backends.BackendPool; when set, backend
        #: waits come from simulated FIFO cache servers (load-
        #: dependent) instead of the fixed distribution above.
        self.backend_pool = backend_pool
        self.mem_accesses_base = mem_accesses_base
        self.fixed_us = fixed_us
        self.service_noise_sigma = service_noise_sigma
        self._noise_mu = -0.5 * service_noise_sigma**2

    def sample_request(
        self, rng: np.random.Generator, req_id: int, conn_id: int
    ) -> Request:
        op = self.mix.sample(rng)
        key = max(1, int(round(self.key_size.sample(rng))))
        value = max(1, int(round(self.value_size.sample(rng))))
        if op == "get":
            request_bytes = _PROTOCOL_OVERHEAD_BYTES + key
            response_bytes = _PROTOCOL_OVERHEAD_BYTES + value
        else:
            request_bytes = _PROTOCOL_OVERHEAD_BYTES + key + value
            response_bytes = _PROTOCOL_OVERHEAD_BYTES
        return Request(
            req_id=req_id,
            conn_id=conn_id,
            op=op,
            key_size=key,
            value_size=value,
            request_bytes=request_bytes,
            response_bytes=response_bytes,
        )

    def request_sampler(
        self,
        rng: np.random.Generator,
        stream_factory: Optional[Callable[[str], np.random.Generator]] = None,
        block: int = 512,
    ) -> Callable[[int, int], Request]:
        """Batched op/key/value drawing on dedicated per-parameter
        streams (same scheme as memcached; falls back to the scalar
        path without a ``stream_factory``).

        The server-side :meth:`profile` deliberately keeps its scalar
        form: it interleaves a lognormal noise draw with an exponential
        backend wait on one stream, and that heterogeneous sequence is
        not exactly batchable.
        """
        if stream_factory is None:
            return super().request_sampler(rng, None, block)
        op_s = BlockStream(self.mix.sample_block, stream_factory("op"), block)
        key_s = BlockStream(self.key_size.sample_block, stream_factory("key"), block)
        value_s = BlockStream(
            self.value_size.sample_block, stream_factory("value"), block
        )
        op_next, key_next, value_next = op_s.next, key_s.next, value_s.next

        def sample(req_id: int, conn_id: int) -> Request:
            op = op_next()
            key = int(round(key_next()))
            value = int(round(value_next()))
            if key < 1:
                key = 1
            if value < 1:
                value = 1
            if op == "get":
                request_bytes = _PROTOCOL_OVERHEAD_BYTES + key
                response_bytes = _PROTOCOL_OVERHEAD_BYTES + value
            else:
                request_bytes = _PROTOCOL_OVERHEAD_BYTES + key + value
                response_bytes = _PROTOCOL_OVERHEAD_BYTES
            return Request(
                req_id=req_id,
                conn_id=conn_id,
                op=op,
                key_size=key,
                value_size=value,
                request_bytes=request_bytes,
                response_bytes=response_bytes,
            )

        sample.streams = (op_s, key_s, value_s)
        return sample

    def profile(self, request: Request, rng: np.random.Generator) -> WorkProfile:
        kb = request.request_bytes / 1024.0
        work = self.route_work_us + self.deserialize_us_per_kb * kb
        reply = self.reply_work_us
        if self.service_noise_sigma > 0:
            noise = float(rng.lognormal(self._noise_mu, self.service_noise_sigma))
            work *= noise
            reply *= noise
        if self.backend_pool is not None:
            wait_us = self.backend_pool.sample_wait_us()
        else:
            wait_us = float(self.backend_wait.sample(rng))
        return WorkProfile(
            work_us=work,
            fixed_us=self.fixed_us,
            mem_accesses=self.mem_accesses_base,
            backend_wait_us=wait_us,
            post_work_us=reply,
        )

    def mean_service_us(self) -> float:
        get_p = self.mix.probability("get")
        mean_req_bytes = _PROTOCOL_OVERHEAD_BYTES + self.key_size.mean() + (
            1.0 - get_p
        ) * self.value_size.mean()
        kb = mean_req_bytes / 1024.0
        work = self.route_work_us + self.deserialize_us_per_kb * kb + self.reply_work_us
        approx_mem = self.mem_accesses_base * 0.2
        # The backend wait is off-core and deliberately excluded: this
        # method sizes CPU utilization, not end-to-end latency.
        return work + self.fixed_us + approx_mem

    def describe(self) -> Dict:
        return {
            "name": self.name,
            "mix": self.mix.spec(),
            "deserialize_us_per_kb": self.deserialize_us_per_kb,
            "backend_wait": self.backend_wait.spec(),
            "mean_service_us": round(self.mean_service_us(), 2),
        }
