"""repro — a reproduction of "Treadmill: Attributing the Source of
Tail Latency through Precise Load Testing and Statistical Inference"
(Zhang, Meisner, Mars, Tang — ISCA 2016).

The package provides:

* ``repro.sim`` — a discrete-event datacenter substrate (CPU with
  DVFS/Turbo, NUMA memory, RSS NIC, kernel path, rack network, packet
  capture) replacing the paper's production hardware;
* ``repro.workloads`` — memcached and mcrouter service models with
  JSON-configurable request characteristics;
* ``repro.core`` — the Treadmill load tester, the robust multi-client
  multi-run measurement procedure, and the quantile-regression
  tail-latency attribution pipeline;
* ``repro.loadtesters`` — faithful models of the flawed baselines the
  paper compares against (CloudSuite, Mutilate, YCSB, Faban);
* ``repro.stats`` — adaptive histograms, quantile estimation and CIs,
  factorial designs, quantile regression, pseudo-R², bootstrap
  inference;
* ``repro.experiments`` — one module per paper table/figure,
  regenerating its rows/series.

* ``repro.measure`` — the versioned MeasurementBackend protocol and
  registry separating the measurement *procedure* from the target
  under test;
* ``repro.live`` — the wall-clock asyncio open-loop driver (backend
  ``"live"``) plus a deterministic local reference server; the driver
  self-heals (reconnects, health probes, stall ladder) and salvages
  partial results as *degraded* runs;
* ``repro.guards`` — executable measurement-validity detectors (the
  paper's §II pitfall catalogue) auditing every run; verdicts ride on
  ``result.guards`` and ``repro.run(spec, strict_guards=True)``
  enforces them.

Quickstart::

    from repro import MeasurementProcedure, ProcedureConfig
    from repro.workloads import MemcachedWorkload

    proc = MeasurementProcedure(ProcedureConfig(
        workload=MemcachedWorkload(), target_utilization=0.7))
    result = proc.run()
    print(result.estimates)   # {0.5: ..., 0.95: ..., 0.99: ...} in us

One-shot execution goes through :func:`repro.run`::

    result = repro.run(spec)                  # sim (the default)
    result = repro.run(spec, backend="live")  # same procedure, real endpoint
"""

from .core import (
    AttributionConfig,
    AttributionReport,
    AttributionStudy,
    BenchConfig,
    MeasurementProcedure,
    ProcedureConfig,
    ProcedureResult,
    TestBench,
    TreadmillConfig,
    TreadmillInstance,
    TREADMILL_FACTORS,
    apply_factors,
    workload_from_json,
)
from .exec import (
    Capabilities,
    ClusterExecutor,
    Executor,
    LocalClusterExecutor,
    ParallelExecutor,
    ResultCache,
    RunSpec,
    SerialExecutor,
    available_backends,
    execute_specs,
    execution,
    make_executor,
    register_backend,
    run_spec,
)
from .facade import run
from .guards import (
    GuardFailureError,
    GuardReport,
    GuardThresholds,
    GuardVerdict,
    available_detectors,
    evaluate_run,
    guard_thresholds,
    set_guard_thresholds,
)
from .measure import (
    BenchCapabilities,
    MeasurementBackend,
    available_measurement_backends,
    backend_defaults,
    make_measurement_backend,
    measure_spec,
    register_measurement_backend,
    set_backend_defaults,
)
from .sim import HardwareSpec
from .workloads import McrouterWorkload, MemcachedWorkload

__version__ = "1.1.0"

__all__ = [
    "run",
    "measure_spec",
    "MeasurementBackend",
    "BenchCapabilities",
    "available_measurement_backends",
    "make_measurement_backend",
    "register_measurement_backend",
    "set_backend_defaults",
    "backend_defaults",
    "GuardFailureError",
    "GuardReport",
    "GuardThresholds",
    "GuardVerdict",
    "available_detectors",
    "evaluate_run",
    "guard_thresholds",
    "set_guard_thresholds",
    "RunSpec",
    "run_spec",
    "Executor",
    "Capabilities",
    "SerialExecutor",
    "ParallelExecutor",
    "ClusterExecutor",
    "LocalClusterExecutor",
    "ResultCache",
    "make_executor",
    "register_backend",
    "available_backends",
    "execute_specs",
    "execution",
    "AttributionConfig",
    "AttributionReport",
    "AttributionStudy",
    "BenchConfig",
    "MeasurementProcedure",
    "ProcedureConfig",
    "ProcedureResult",
    "TestBench",
    "TreadmillConfig",
    "TreadmillInstance",
    "TREADMILL_FACTORS",
    "apply_factors",
    "workload_from_json",
    "HardwareSpec",
    "McrouterWorkload",
    "MemcachedWorkload",
    "__version__",
]
