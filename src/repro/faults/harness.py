"""The chaos harness: run a reference sweep under injected faults and
check the executor's one honest promise.

**The chaos invariant** (acceptance gate of the fault-injection PR):

    Under any FaultPlan, a cluster run either produces results
    *bit-identical* to :class:`~repro.exec.executors.SerialExecutor`,
    or fails with a clean, attributed :class:`~repro.exec.ExecError` —
    never a hang, never silent data loss.

:func:`run_chaos` drives one seeded chaos experiment end to end:

1. build a batch of cheap, deterministic :class:`ChaosSpec` work
   (digestable + cacheable like real ``RunSpec`` experiments, but
   milliseconds each so a seed × cluster-size matrix stays fast);
2. compute the serial reference signatures;
3. run the same batch on a :class:`~repro.exec.LocalClusterExecutor`
   wired with a seeded :class:`~repro.faults.plan.FaultPlan` injector,
   a result cache, a run journal, retry budgets, circuit breakers,
   and a healthy-worker floor;
4. when an injected ``coordinator_restart`` kills the run loop
   (:class:`~repro.exec.distributed.SimulatedCrash`), restart from
   the journal + cache — the injector is *shared* across restarts so
   consumed faults never re-fire;
5. compare against the reference and report.

The harness is also the reference driver for operating real chaos
runs from the CLI (``repro chaos --seed N``-style usage in tests).
"""

from __future__ import annotations

import hashlib
import json
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exec.api import ClusterOptions, HealthPolicy, RetryPolicy
from ..exec.cache import ResultCache
from ..exec.distributed import LocalClusterExecutor, SimulatedCrash
from ..exec.executors import ExecError, SerialExecutor
from ..exec.journal import RunJournal
from ..exec.progress import Telemetry
from .plan import FaultAction, FaultInjector, FaultPlan

__all__ = [
    "ChaosSpec",
    "ChaosResult",
    "chaos_task",
    "result_signature",
    "ChaosReport",
    "run_chaos",
    "LiveChaosReport",
    "run_live_chaos",
    "PartitionChaosReport",
    "run_partition_chaos",
]


# ----------------------------------------------------------------------
# the reference workload: cheap, deterministic, digestable, cacheable
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosSpec:
    """A miniature RunSpec stand-in: content-digested, describable.

    ``chaos_task`` is a pure function of (payload, salt, rounds), so
    the executor determinism contract — equal spec ⇒ bit-identical
    result — holds exactly as it does for real experiments.
    """

    payload: int
    salt: int = 0
    rounds: int = 64
    tag: str = ""

    def digest(self) -> str:
        blob = json.dumps(
            {
                "__chaos_spec__": 1,
                "payload": self.payload,
                "salt": self.salt,
                "rounds": self.rounds,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def describe(self) -> Dict[str, object]:
        return {
            "workload": "chaos",
            "payload": self.payload,
            "salt": self.salt,
            "rounds": self.rounds,
            "digest": self.digest()[:12],
        }


@dataclass
class ChaosResult:
    """RunResult-shaped value for chaos work (cacheable)."""

    value: str
    metrics: Dict[float, float]
    spec_digest: str = ""
    wall_s: float = 0.0
    events_processed: int = 0
    from_cache: bool = False

    def raw_samples(self) -> np.ndarray:
        return np.empty(0)


def chaos_task(spec: ChaosSpec) -> ChaosResult:
    """Pure function of the spec: iterated SHA-256 with derived metrics."""
    t0 = time.perf_counter()
    digest = f"{spec.salt}:{spec.payload}".encode("utf-8")
    for _ in range(spec.rounds):
        digest = hashlib.sha256(digest).digest()
    value = digest.hex()
    metrics = {
        0.5: int(value[:8], 16) / 2**32,
        0.99: int(value[8:16], 16) / 2**32,
    }
    return ChaosResult(
        value=value,
        metrics=metrics,
        spec_digest=spec.digest(),
        wall_s=time.perf_counter() - t0,
        events_processed=spec.rounds,
    )


def result_signature(result: ChaosResult) -> Tuple[str, Tuple, str]:
    """The bit-identity view of a result (excludes wall clock/cache)."""
    return (
        result.value,
        tuple(sorted(result.metrics.items())),
        result.spec_digest,
    )


# ----------------------------------------------------------------------
# the chaos experiment
# ----------------------------------------------------------------------
@dataclass
class ChaosReport:
    """Outcome of one seeded chaos run (the invariant's evidence)."""

    seed: int
    workers: int
    plan_digest: str
    kinds: Tuple[str, ...]
    identical: bool = False
    clean_failure: Optional[str] = None
    restarts: int = 0
    faults_observed: int = 0
    recoveries_observed: int = 0
    fired: List[Tuple[str, int, str]] = field(default_factory=list)
    degraded: bool = False
    journal_outstanding: int = 0
    wall_s: float = 0.0

    @property
    def invariant_holds(self) -> bool:
        """Bit-identical to serial, or a clean attributed failure."""
        return self.identical or self.clean_failure is not None

    def summary(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "workers": self.workers,
            "plan": self.plan_digest[:12],
            "kinds": list(self.kinds),
            "identical": self.identical,
            "clean_failure": self.clean_failure,
            "restarts": self.restarts,
            "faults": self.faults_observed,
            "recoveries": self.recoveries_observed,
            "fired": [list(f) for f in self.fired],
            "degraded": self.degraded,
            "journal_outstanding": self.journal_outstanding,
            "wall_s": round(self.wall_s, 3),
            "invariant_holds": self.invariant_holds,
        }


def _cluster_options(
    workers: int,
    lease_s: float,
    journal_path: str,
    injector: FaultInjector,
    seed: int,
) -> ClusterOptions:
    return ClusterOptions(
        workers=workers,
        lease_s=lease_s,
        max_attempts=8,
        retry=RetryPolicy(
            max_attempts=8,
            backoff_base_s=0.02,
            backoff_cap_s=0.25,
            jitter_seed=seed,
        ),
        health=HealthPolicy(
            trip_after=3,
            cooldown_s=2.0 * lease_s,
            min_healthy_workers=1,
            degrade_after_s=4.0 * lease_s,
        ),
        journal_path=journal_path,
        fault_plan=injector,
    )


def run_chaos(
    seed: int,
    workers: int = 2,
    n_specs: int = 10,
    lease_s: float = 1.0,
    plan: Optional[FaultPlan] = None,
    include_restart: bool = False,
    max_restarts: int = 4,
    work_dir: Optional[str] = None,
) -> ChaosReport:
    """Run one seeded chaos experiment; returns its :class:`ChaosReport`.

    ``plan=None`` draws ``FaultPlan.generate(seed, hang_s=2.5*lease_s)``;
    ``include_restart=True`` appends a ``coordinator_restart`` action,
    and the harness then resumes from the run journal + cache with the
    *same* injector (consumed faults never re-fire, so restarts are
    bounded by the plan, with ``max_restarts`` as a backstop).
    """
    t0 = time.perf_counter()
    specs = [ChaosSpec(payload=i, salt=seed) for i in range(n_specs)]
    with SerialExecutor(task=chaos_task) as serial:
        reference = [result_signature(r) for r in serial.run(specs)]

    if plan is None:
        plan = FaultPlan.generate(seed, n_faults=3, hang_s=2.5 * lease_s)
    if include_restart and "coordinator_restart" not in plan.kinds():
        plan = plan.with_action(
            FaultAction(kind="coordinator_restart", site="coordinator.loop", nth=2)
        )
    injector = plan.injector()

    tmp: Optional[tempfile.TemporaryDirectory] = None
    if work_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        work_dir = tmp.name
    root = Path(work_dir)
    journal_path = str(root / "journal.jsonl")
    cache = ResultCache(root / "cache")

    report = ChaosReport(
        seed=seed,
        workers=workers,
        plan_digest=plan.digest(),
        kinds=plan.kinds(),
    )
    telemetry = Telemetry()
    results = None
    degraded = False
    try:
        while True:
            executor = LocalClusterExecutor(
                options=_cluster_options(
                    workers, lease_s, journal_path, injector, seed
                ),
                task=chaos_task,
                cache=cache,
            )
            try:
                results = executor.run(specs, progress=telemetry)
                degraded = degraded or executor.degraded
                break
            except SimulatedCrash:
                report.restarts += 1
                if report.restarts > max_restarts:
                    report.clean_failure = (
                        f"gave up after {report.restarts} coordinator restarts"
                    )
                    break
            except ExecError as err:
                # The clean, attributed failure arm of the invariant.
                report.clean_failure = f"{type(err).__name__}: {err}"
                break
            finally:
                degraded = degraded or executor.degraded
                executor.close()
        if results is not None:
            report.identical = [result_signature(r) for r in results] == reference
        report.degraded = degraded
        report.faults_observed = telemetry.faults
        report.recoveries_observed = telemetry.recoveries
        report.fired = list(injector.fired)
        report.journal_outstanding = sum(
            len(d) for d in RunJournal(journal_path).open_batches().values()
        )
    finally:
        if tmp is not None:
            tmp.cleanup()
    report.wall_s = time.perf_counter() - t0
    return report


# ----------------------------------------------------------------------
# the live-fleet chaos experiment
# ----------------------------------------------------------------------
@dataclass
class LiveChaosReport:
    """Outcome of one seeded *live-fleet* chaos run.

    **The live chaos invariant** (the fleet counterpart of the
    executor invariant above):

        Under any live FaultPlan, a fleet measurement either
        *converges* — possibly degraded, with the losses accounted on
        the fleet ledger — or fails with a clean, attributed
        :class:`~repro.live.LiveMeasurementError` within the deadline.
        Never a hang.
    """

    seed: int
    processes: int
    plan_digest: str
    kinds: Tuple[str, ...]
    converged: bool = False
    degraded: bool = False
    clean_failure: Optional[str] = None
    unexpected: Optional[str] = None
    hang: bool = False
    fired: List[Tuple[str, int, str]] = field(default_factory=list)
    ledger: Dict[str, object] = field(default_factory=dict)
    wall_s: float = 0.0

    @property
    def invariant_holds(self) -> bool:
        """Converged (degraded or not), or clean failure — never a hang."""
        if self.hang or self.unexpected is not None:
            return False
        return self.converged or self.clean_failure is not None

    def summary(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "processes": self.processes,
            "plan": self.plan_digest[:12],
            "kinds": list(self.kinds),
            "converged": self.converged,
            "degraded": self.degraded,
            "clean_failure": self.clean_failure,
            "unexpected": self.unexpected,
            "hang": self.hang,
            "fired": [list(f) for f in self.fired],
            "ledger": {
                k: (list(v) if isinstance(v, tuple) else v)
                for k, v in self.ledger.items()
            },
            "wall_s": round(self.wall_s, 3),
            "invariant_holds": self.invariant_holds,
        }


def run_live_chaos(
    seed: int,
    processes: int = 3,
    rate_rps: float = 1500.0,
    samples_per_instance: int = 150,
    plan: Optional[FaultPlan] = None,
    deadline_s: float = 90.0,
) -> LiveChaosReport:
    """Run one seeded live-fleet chaos experiment end to end.

    Boots a local reference server and a ``processes``-wide fleet
    against it, with one *shared* injector wired into both the fleet
    supervisor (``fleet.spawn`` / ``fleet.heartbeat``) and the server
    (``server.connection``) — so a plan's occurrence counting spans
    the whole experiment, exactly like the executor harness shares its
    injector across coordinator restarts.  ``plan=None`` draws
    :meth:`FaultPlan.generate_live`.

    The measurement runs on a watchdog thread: if it neither returns
    nor raises within ``deadline_s``, the run is recorded as a *hang*
    — the one outcome the invariant forbids.
    """
    import threading

    from ..exec.spec import RunSpec
    from ..live import LiveMeasurementError, LiveOptions, serve_in_thread
    from ..live.driver import LiveBackend
    from ..live.refserver import RefServerConfig
    from ..workloads import MemcachedWorkload

    t0 = time.perf_counter()
    if plan is None:
        plan = FaultPlan.generate_live(seed)
    injector = plan.injector()
    report = LiveChaosReport(
        seed=seed,
        processes=processes,
        plan_digest=plan.digest(),
        kinds=plan.kinds(),
    )
    server = serve_in_thread(
        RefServerConfig(
            service={"type": "constant", "value": 200.0},
            seed=seed,
            injector=injector,
        )
    )
    spec = RunSpec(
        workload=MemcachedWorkload(),
        total_rate_rps=rate_rps,
        num_instances=processes,
        connections_per_instance=2,
        warmup_samples=30,
        measurement_samples_per_instance=samples_per_instance,
        seed=seed,
        backend="live",
        tag=f"live-chaos seed={seed}",
    )
    options = LiveOptions(
        target=server.target,
        processes=processes,
        injector=injector,
        heartbeat_interval_s=0.1,
        heartbeat_timeout_s=1.0,
        respawn_attempts=1,
        respawn_backoff_base_s=0.05,
        respawn_backoff_cap_s=0.5,
        progress_timeout_s=8.0,
        stall_warn_s=0.5,
        stall_probe_s=2.0,
    )
    box: Dict[str, object] = {}

    def _measure() -> None:
        try:
            box["result"] = LiveBackend(options).prepare(spec).drive()
        except (LiveMeasurementError, ValueError) as exc:
            box["clean"] = f"{type(exc).__name__}: {exc}"
        except BaseException as exc:  # noqa: BLE001 — the invariant's evidence
            box["unexpected"] = f"{type(exc).__name__}: {exc}"

    thread = threading.Thread(target=_measure, daemon=True)
    try:
        thread.start()
        thread.join(deadline_s)
        if thread.is_alive():
            report.hang = True
        elif "result" in box:
            result = box["result"]
            report.converged = True
            report.ledger = dict(getattr(result, "live_health", {}) or {})
            report.degraded = bool(report.ledger.get("degraded", False))
        elif "clean" in box:
            report.clean_failure = str(box["clean"])
        else:
            report.unexpected = str(box.get("unexpected", "no outcome recorded"))
    finally:
        server.stop()
    report.fired = list(injector.fired)
    report.wall_s = time.perf_counter() - t0
    return report


# ----------------------------------------------------------------------
# partitioned-simulation chaos
# ----------------------------------------------------------------------
@dataclass
class PartitionChaosReport:
    """Outcome of one seeded *partitioned-simulation* chaos run.

    **The partition chaos invariant**:

        Under any ``partition_desync`` plan (window-boundary frames
        dropped or duplicated between the coordinator and its shard
        workers), a partitioned run either produces a result
        *bit-identical* to the serial kernel or fails with a clean
        :class:`~repro.sim.engine.SimulationError` within the deadline.
        Never a hang, and never a silently divergent result.
    """

    seed: int
    partitions: int
    plan_digest: str
    kinds: Tuple[str, ...]
    #: Fingerprint of the serial reference run.
    reference_fingerprint: str = ""
    identical: bool = False
    clean_failure: Optional[str] = None
    unexpected: Optional[str] = None
    hang: bool = False
    fired: List[Tuple[str, int, str]] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def invariant_holds(self) -> bool:
        """Bit-identical or clean SimulationError — never a hang."""
        if self.hang or self.unexpected is not None:
            return False
        return self.identical or self.clean_failure is not None

    def summary(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "partitions": self.partitions,
            "plan": self.plan_digest[:12],
            "kinds": list(self.kinds),
            "identical": self.identical,
            "clean_failure": self.clean_failure,
            "unexpected": self.unexpected,
            "hang": self.hang,
            "fired": [list(f) for f in self.fired],
            "wall_s": round(self.wall_s, 3),
            "invariant_holds": self.invariant_holds,
        }


def run_partition_chaos(
    seed: int,
    partitions: int = 2,
    samples_per_instance: int = 120,
    plan: Optional[FaultPlan] = None,
    deadline_s: float = 120.0,
    window_timeout_s: float = 8.0,
) -> PartitionChaosReport:
    """Run one seeded partitioned-simulation chaos experiment.

    Measures a small single-server spec serially (the reference
    fingerprint), then re-measures it sharded across ``partitions``
    worker processes with a ``partition_desync`` injector wired into
    the coordinator's frame sender.  ``plan=None`` draws a seeded
    all-``partition_desync`` plan whose ``nth`` values cover both the
    drop (odd) and duplicate (even) arms.

    The partitioned run executes on a watchdog thread: if it neither
    returns nor raises within ``deadline_s`` it is recorded as a
    *hang* — the outcome the invariant forbids.  A dropped frame is
    converted into a clean failure by the coordinator's per-window
    receive deadline (``window_timeout_s``), so the harness never
    relies on the watchdog for the expected cases.
    """
    import threading

    from ..exec.spec import RunSpec, result_fingerprint
    from ..measure.simbackend import (
        _drive_single_server,
        merge_single_partials,
    )
    from ..measure.partitionproc import run_partitioned_process
    from ..sim.engine import SimulationError
    from ..workloads import MemcachedWorkload

    t0 = time.perf_counter()
    if plan is None:
        plan = FaultPlan.generate(
            seed, n_faults=2, kinds=["partition_desync"], max_nth=4
        )
    injector = plan.injector()
    report = PartitionChaosReport(
        seed=seed,
        partitions=partitions,
        plan_digest=plan.digest(),
        kinds=plan.kinds(),
    )
    spec = RunSpec(
        workload=MemcachedWorkload(),
        total_rate_rps=20_000.0,
        num_instances=2,
        connections_per_instance=2,
        warmup_samples=20,
        measurement_samples_per_instance=samples_per_instance,
        keep_raw=True,
        seed=seed,
        tag=f"partition-chaos seed={seed}",
    )
    report.reference_fingerprint = result_fingerprint(_drive_single_server(spec))
    box: Dict[str, object] = {}

    def _measure() -> None:
        try:
            box["result"] = run_partitioned_process(
                spec,
                partitions,
                builder_ref="repro.measure.simbackend:build_single_partitioned",
                merge=merge_single_partials,
                fault=injector,
                window_timeout_s=window_timeout_s,
            )
        except SimulationError as exc:
            box["clean"] = f"{type(exc).__name__}: {exc}"
        except BaseException as exc:  # noqa: BLE001 — the invariant's evidence
            box["unexpected"] = f"{type(exc).__name__}: {exc}"

    thread = threading.Thread(target=_measure, daemon=True)
    thread.start()
    thread.join(deadline_s)
    if thread.is_alive():
        report.hang = True
    elif "result" in box:
        report.identical = (
            result_fingerprint(box["result"]) == report.reference_fingerprint
        )
    elif "clean" in box:
        report.clean_failure = str(box["clean"])
    else:
        report.unexpected = str(box.get("unexpected", "no outcome recorded"))
    report.fired = list(injector.fired)
    report.wall_s = time.perf_counter() - t0
    return report
