"""Deterministic fault injection and chaos testing for the exec stack.

The package has two halves:

- :mod:`repro.faults.plan` — seeded, content-digestable
  :class:`FaultPlan` schedules and the :class:`FaultInjector` that
  fires them at explicit hook points threaded through
  ``repro.exec`` (all no-ops in production).
- :mod:`repro.faults.harness` — the chaos harness, whose
  :func:`run_chaos` asserts the executor invariant: under any fault
  plan, a cluster run is bit-identical to serial or fails with a
  clean, attributed error — never a hang, never silent data loss.

``repro.exec`` never imports this package; the coupling is one-way
(duck-typed ``fire(site)`` hooks), so production code paths carry no
chaos machinery.
"""

from .harness import (
    ChaosReport,
    ChaosResult,
    ChaosSpec,
    chaos_task,
    result_signature,
    run_chaos,
)
from .plan import FAULT_KINDS, KIND_SITES, FaultAction, FaultInjector, FaultPlan

__all__ = [
    "FAULT_KINDS",
    "KIND_SITES",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "ChaosSpec",
    "ChaosResult",
    "ChaosReport",
    "chaos_task",
    "result_signature",
    "run_chaos",
]
