"""Deterministic, seeded fault plans and the injector that fires them.

Treadmill's argument is that trustworthy tail numbers require
controlling every source of measurement disturbance — including the
measurement infrastructure itself.  This module makes the executor's
failure handling *testable the same way experiments are*: a
:class:`FaultPlan` is a frozen, content-digestable schedule of faults
drawn from a seeded RNG, so a chaos run is described by a value (plan
digest) exactly like an experiment is described by a ``RunSpec``
digest.  Same seed ⇒ same plan ⇒ same injection decisions.

Injection is via **explicit hook points** threaded through the exec
stack — never monkeypatching — and every hook is a no-op in
production (``injector is None``):

==================  =====================================================
site                where it is consulted
==================  =====================================================
``worker.task``     ``repro.exec.worker.serve`` before executing a task
                    (``worker_crash`` / ``worker_hang`` / ``slow_worker``)
``worker.result``   before sending a result (``corrupt_result`` poisons
                    the digest echo)
``worker.send``     the result frame itself (``drop_frame`` /
                    ``truncate_frame``)
``coordinator.send``  ``Coordinator._send`` for every outbound message
                    (``drop_frame`` / ``truncate_frame``)
``coordinator.recv``  ``Coordinator._serve_conn`` per inbound message
                    (``drop_frame`` / ``truncate_frame`` — torn receive)
``coordinator.loop``  ``ClusterExecutor.run`` each scheduler iteration
                    (``coordinator_restart`` raises ``SimulatedCrash``)
``cache.put``       ``ResultCache.put`` after a store
                    (``corrupt_cache_entry`` flips payload bytes)
``fleet.spawn``     ``repro.live.fleet`` per client-process spawn
                    (``client_proc_crash`` / ``client_proc_hang`` ship
                    a directive to that process)
``fleet.heartbeat``  the fleet supervisor per received heartbeat
                    (``fleet_frame_drop`` discards the frame)
``server.connection``  the reference server per request
                    (``endpoint_reset`` closes the connection abruptly)
==================  =====================================================

An action fires on the *nth* arrival at its site and is consumed (at
most once per injector).  Worker processes build their own injector
from the serialized plan (``--fault-plan``), so occurrence counting is
per-process — deterministic given each process's own event order.
"""

from __future__ import annotations

import hashlib
import json
import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "FAULT_KINDS",
    "LIVE_FAULT_KINDS",
    "KIND_SITES",
    "FaultAction",
    "FaultPlan",
    "FaultInjector",
]

#: Fault kinds for the *live fleet* path (:mod:`repro.live.fleet`):
#: the supervisor consults its injector at ``fleet.spawn`` (per client
#: process spawn — a matching action ships a crash/hang directive to
#: that process) and ``fleet.heartbeat`` (per received heartbeat — a
#: matching ``fleet_frame_drop`` discards the frame, so a healthy
#: client looks dead); the reference server fires
#: ``server.connection`` per request (``endpoint_reset`` closes the
#: connection abruptly, exercising the driver's reconnect path).
#: Supervisor-side firing keeps occurrence counting global: an
#: ``nth=1`` action hits exactly one process, not one per process.
LIVE_FAULT_KINDS: Tuple[str, ...] = (
    "client_proc_crash",
    "client_proc_hang",
    "fleet_frame_drop",
    "endpoint_reset",
)

#: Every fault kind the harness knows how to inject (cluster executor
#: kinds first, then the live-fleet kinds).
FAULT_KINDS: Tuple[str, ...] = (
    "worker_crash",
    "worker_hang",
    "slow_worker",
    "drop_frame",
    "truncate_frame",
    "corrupt_result",
    "corrupt_cache_entry",
    "coordinator_restart",
    # Partitioned-simulation window frames: odd ``nth`` drops the
    # boundary frame (the coordinator's receive deadline turns the
    # stall into a clean SimulationError), even ``nth`` duplicates it
    # (the worker detects the window-sequence desync and refuses).
    "partition_desync",
) + LIVE_FAULT_KINDS

#: Hook sites each kind may be scheduled at (the RNG picks one).
KIND_SITES: Dict[str, Tuple[str, ...]] = {
    "worker_crash": ("worker.task",),
    "worker_hang": ("worker.task",),
    "slow_worker": ("worker.task",),
    "corrupt_result": ("worker.result",),
    "drop_frame": ("coordinator.send", "worker.send"),
    "truncate_frame": ("coordinator.send", "worker.send"),
    "corrupt_cache_entry": ("cache.put",),
    "coordinator_restart": ("coordinator.loop",),
    "partition_desync": ("partition.frame",),
    "client_proc_crash": ("fleet.spawn",),
    "client_proc_hang": ("fleet.spawn",),
    "fleet_frame_drop": ("fleet.heartbeat",),
    "endpoint_reset": ("server.connection",),
}

_PLAN_VERSION = 1


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault: fire ``kind`` on the ``nth`` arrival at ``site``."""

    kind: str
    site: str
    nth: int = 1
    #: Sleep duration for ``worker_hang`` / ``slow_worker``.
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if self.site not in KIND_SITES[self.kind]:
            raise ValueError(
                f"fault {self.kind!r} cannot fire at site {self.site!r}; "
                f"valid: {KIND_SITES[self.kind]}"
            )
        if self.nth < 1:
            raise ValueError("nth must be >= 1")


@dataclass(frozen=True)
class FaultPlan:
    """A frozen, content-digestable schedule of faults.

    Build one explicitly from actions, or draw one from a seeded RNG
    with :meth:`generate`.  Plans serialize to JSON (``to_json`` /
    ``from_json``) so ``repro-worker --fault-plan`` can reconstruct
    them in worker processes.
    """

    seed: int = 0
    actions: Tuple[FaultAction, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "actions", tuple(self.actions))

    # -- construction --------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int,
        n_faults: int = 3,
        kinds: Optional[Sequence[str]] = None,
        max_nth: int = 3,
        hang_s: float = 2.0,
        slow_s: float = 0.2,
    ) -> "FaultPlan":
        """Draw a plan from a seeded RNG (pure function of arguments).

        ``kinds`` restricts the palette (default: every *executor* kind
        except ``coordinator_restart``, which needs a restart-capable
        driver — the chaos harness adds it deliberately.  The live
        kinds are likewise excluded: they target a different harness,
        :meth:`generate_live`, and admitting them here would reshuffle
        every historical seeded plan.  ``partition_desync`` is excluded
        for the same reason — it targets the partitioned-simulation
        harness (``run_partition_chaos``), which passes it explicitly).
        """
        rng = random.Random(seed)
        excluded = {"coordinator_restart", "partition_desync", *LIVE_FAULT_KINDS}
        palette = list(kinds if kinds is not None else
                       [k for k in FAULT_KINDS if k not in excluded])
        actions: List[FaultAction] = []
        for _ in range(n_faults):
            kind = rng.choice(palette)
            site = rng.choice(KIND_SITES[kind])
            seconds = 0.0
            if kind == "worker_hang":
                seconds = hang_s
            elif kind == "slow_worker":
                seconds = slow_s
            actions.append(
                FaultAction(
                    kind=kind,
                    site=site,
                    nth=rng.randint(1, max_nth),
                    seconds=seconds,
                )
            )
        return cls(seed=seed, actions=tuple(actions))

    @classmethod
    def generate_live(
        cls,
        seed: int,
        n_faults: int = 2,
        kinds: Optional[Sequence[str]] = None,
        max_nth: int = 3,
        crash_after_s: float = 0.3,
    ) -> "FaultPlan":
        """Draw a live-fleet plan from a seeded RNG (pure function).

        The palette defaults to :data:`LIVE_FAULT_KINDS`; ``seconds``
        on a ``client_proc_crash`` is the in-process delay before the
        abrupt exit (mid-measurement, not at start-up).
        """
        # Distinct stream from generate(): same seed, different harness.
        rng = random.Random(f"live:{seed}")
        palette = list(kinds if kinds is not None else LIVE_FAULT_KINDS)
        actions: List[FaultAction] = []
        for _ in range(n_faults):
            kind = rng.choice(palette)
            site = rng.choice(KIND_SITES[kind])
            seconds = crash_after_s if kind == "client_proc_crash" else 0.0
            actions.append(
                FaultAction(
                    kind=kind,
                    site=site,
                    nth=rng.randint(1, max_nth),
                    seconds=seconds,
                )
            )
        return cls(seed=seed, actions=tuple(actions))

    def with_action(self, action: FaultAction) -> "FaultPlan":
        return FaultPlan(seed=self.seed, actions=self.actions + (action,))

    # -- identity ------------------------------------------------------
    def _payload(self) -> Dict[str, object]:
        return {
            "version": _PLAN_VERSION,
            "seed": self.seed,
            "actions": [
                {
                    "kind": a.kind,
                    "site": a.site,
                    "nth": a.nth,
                    "seconds": repr(a.seconds),
                }
                for a in self.actions
            ],
        }

    def digest(self) -> str:
        """Stable content digest (same spirit as ``RunSpec.digest``)."""
        blob = json.dumps(self._payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def kinds(self) -> Tuple[str, ...]:
        return tuple(a.kind for a in self.actions)

    # -- serialization -------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(self._payload(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        if data.get("version") != _PLAN_VERSION:
            raise ValueError(
                f"fault plan version mismatch: {data.get('version')!r} "
                f"(expected {_PLAN_VERSION})"
            )
        actions = tuple(
            FaultAction(
                kind=str(a["kind"]),
                site=str(a["site"]),
                nth=int(a["nth"]),
                seconds=float(a.get("seconds", 0.0)),
            )
            for a in data.get("actions", ())
        )
        return cls(seed=int(data.get("seed", 0)), actions=actions)

    # -- execution -----------------------------------------------------
    def injector(self) -> "FaultInjector":
        """A fresh injector over this plan (counts start at zero)."""
        return FaultInjector(self)


class FaultInjector:
    """Thread-safe occurrence counter that fires plan actions.

    ``fire(site)`` increments the site's arrival counter and returns
    the (at most one) un-consumed action scheduled for that arrival,
    else None.  Each action fires at most once per injector; sharing
    one injector across coordinator restarts (as the chaos harness
    does) therefore guarantees a ``coordinator_restart`` fault cannot
    re-fire forever.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}
        self._consumed: set = set()
        #: (site, arrival_n, kind) tuples, for assertions and reports.
        self.fired: List[Tuple[str, int, str]] = []

    def injector(self) -> "FaultInjector":
        """Duck-type compatibility with FaultPlan (returns itself), so
        ``ClusterOptions.fault_plan`` accepts either."""
        return self

    def to_json(self) -> str:
        return self.plan.to_json()

    def fire(self, site: str):
        """Consult the plan at a hook point; returns a FaultAction or None."""
        with self._lock:
            n = self._counts.get(site, 0) + 1
            self._counts[site] = n
            for idx, action in enumerate(self.plan.actions):
                if idx in self._consumed:
                    continue
                if action.site == site and action.nth == n:
                    self._consumed.add(idx)
                    self.fired.append((site, n, action.kind))
                    return action
        return None

    @property
    def exhausted(self) -> bool:
        return len(self._consumed) == len(self.plan.actions)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)
