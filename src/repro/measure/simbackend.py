"""The simulator measurement backend ("sim").

The historical execution semantics of :func:`repro.exec.spec.run_spec`,
now behind the :class:`~repro.measure.api.MeasurementBackend` protocol:
one spec == one of the paper's independent runs == one fresh
:class:`~repro.core.bench.TestBench` boot in virtual time.  Scenario
specs route through the multi-pool scenario runtime.

This backend is the determinism anchor of the library — equal spec ⇒
bit-identical result in any process — which is why it alone declares
``deterministic=True`` and participates in the result cache and the
serial-vs-parallel identity gates.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass

from ..core.aggregation import aggregate_quantile
from ..core.bench import BenchConfig, TestBench
from ..core.treadmill import TreadmillConfig, TreadmillInstance
from .api import BenchCapabilities, register_measurement_backend

__all__ = ["SimOptions", "SimBackend"]


@dataclass(frozen=True)
class SimOptions:
    """Options for the simulator backend.

    Deliberately empty: everything that influences a simulated result
    must live in the :class:`~repro.exec.spec.RunSpec` content digest,
    or equal specs would stop implying equal results and the cache
    contract would break.  Environment-only knobs belong here if they
    ever appear (none so far).
    """


class _SimRun:
    """One prepared simulator experiment (``MeasurementRun``)."""

    def __init__(self, spec) -> None:
        self.spec = spec

    def drive(self):
        spec = self.spec
        if spec.scenario is not None:
            from ..scenarios.runtime import _execute_scenario_spec

            return _execute_scenario_spec(spec)
        return _drive_single_server(spec)


class SimBackend:
    """Virtual-time discrete-event backend (the historical semantics)."""

    def __init__(self, options: SimOptions | None = None) -> None:
        self.options = options if options is not None else SimOptions()

    def prepare(self, spec) -> _SimRun:
        return _SimRun(spec)

    def capabilities(self) -> BenchCapabilities:
        return BenchCapabilities(
            backend="sim",
            deterministic=True,
            wall_clock=False,
            fault_hookable=False,
            scenarios=True,
            utilization_targeting=True,
            # The guard tape (windowed phase summaries, warm-up tail,
            # mechanistic client utilizations) rides every sim report.
            guard_evidence=True,
        )

    def close(self) -> None:  # stateless; nothing to release
        return None


def _drive_single_server(spec):
    """The legacy single-server body: boot, load, measure, report.

    Pure function of ``spec``: same spec, same result, in any process
    (the serial-vs-parallel determinism guarantee rests here).
    """
    from ..exec.spec import RunResult, metric_samples

    t0 = time.perf_counter()
    bench = TestBench(
        BenchConfig(workload=spec.workload, hardware=spec.hardware, seed=spec.seed),
        run_index=spec.run_index,
    )
    if spec.total_rate_rps is not None:
        total_rate = spec.total_rate_rps
    else:
        per_us = bench.server.arrival_rate_for_utilization(spec.target_utilization)
        total_rate = per_us * 1e6
    rate_per_instance = total_rate / spec.num_instances
    instances = []
    for i in range(spec.num_instances):
        tm_cfg = TreadmillConfig(
            rate_rps=rate_per_instance,
            connections=spec.connections_per_instance,
            warmup_samples=spec.warmup_samples,
            measurement_samples=spec.measurement_samples_per_instance,
            keep_raw=spec.keep_raw,
        )
        instances.append(TreadmillInstance(bench, f"client{i}", tm_cfg))
    for inst in instances:
        inst.start()
    # The event loop allocates no reference cycles; cyclic-GC passes in
    # the middle of a run are pure overhead.  Restore the collector's
    # prior state even on error.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        bench.run_to_completion(instances)
    finally:
        if gc_was_enabled:
            gc.enable()

    reports = [inst.report() for inst in instances]
    samples_by_client = {r.name: metric_samples(r) for r in reports}
    metrics = {
        q: aggregate_quantile(samples_by_client, q, combine=spec.combine)
        for q in spec.quantiles
    }
    return RunResult(
        run_index=spec.run_index,
        reports=reports,
        metrics=metrics,
        server_utilization=bench.server.measured_utilization(),
        client_utilizations={
            name: client.utilization() for name, client in bench.clients.items()
        },
        spec_digest=spec.digest(),
        wall_s=time.perf_counter() - t0,
        events_processed=bench.sim.events_processed,
    )


register_measurement_backend(
    "sim",
    lambda options: SimBackend(options),
    SimOptions,
    summary="virtual-time discrete-event bench (deterministic, cacheable)",
)
