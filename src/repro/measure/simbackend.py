"""The simulator measurement backend ("sim").

The historical execution semantics of :func:`repro.exec.spec.run_spec`,
now behind the :class:`~repro.measure.api.MeasurementBackend` protocol:
one spec == one of the paper's independent runs == one fresh
:class:`~repro.core.bench.TestBench` boot in virtual time.  Scenario
specs route through the multi-pool scenario runtime.

This backend is the determinism anchor of the library — equal spec ⇒
bit-identical result in any process — which is why it alone declares
``deterministic=True`` and participates in the result cache and the
serial-vs-parallel identity gates.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass

from ..core.aggregation import aggregate_quantile
from ..core.bench import BenchConfig, TestBench
from ..core.treadmill import TreadmillConfig, TreadmillInstance
from .api import BenchCapabilities, register_measurement_backend

__all__ = ["SimOptions", "SimBackend"]


@dataclass(frozen=True)
class SimOptions:
    """Options for the simulator backend.

    Everything that influences a simulated *result* must live in the
    :class:`~repro.exec.spec.RunSpec` content digest, or equal specs
    would stop implying equal results and the cache contract would
    break.  ``partition_mode`` qualifies as environment-only precisely
    because both modes are pinned bit-identical to the serial kernel:
    it changes how the answer is computed, never the answer.
    """

    #: How ``RunSpec.partitions`` executes: ``"inproc"`` (windowed
    #: sub-kernels in this process, the correctness reference) or
    #: ``"process"`` (one worker process per shard over the frame
    #: protocol).  Ignored when the spec requests no partitioning.
    partition_mode: str = "inproc"


class _SimRun:
    """One prepared simulator experiment (``MeasurementRun``)."""

    def __init__(self, spec, options: "SimOptions | None" = None) -> None:
        self.spec = spec
        self.options = options if options is not None else SimOptions()

    def drive(self):
        spec = self.spec
        if spec.scenario is not None:
            from ..scenarios.runtime import _execute_scenario_spec

            return _execute_scenario_spec(
                spec, partition_mode=self.options.partition_mode
            )
        if spec.partitions is not None:
            return _drive_single_partitioned(
                spec, spec.partitions, self.options.partition_mode
            )
        return _drive_single_server(spec)


class SimBackend:
    """Virtual-time discrete-event backend (the historical semantics)."""

    def __init__(self, options: SimOptions | None = None) -> None:
        self.options = options if options is not None else SimOptions()

    def prepare(self, spec) -> _SimRun:
        return _SimRun(spec, self.options)

    def capabilities(self) -> BenchCapabilities:
        return BenchCapabilities(
            backend="sim",
            deterministic=True,
            wall_clock=False,
            fault_hookable=False,
            scenarios=True,
            utilization_targeting=True,
            # The guard tape (windowed phase summaries, warm-up tail,
            # mechanistic client utilizations) rides every sim report.
            guard_evidence=True,
        )

    def close(self) -> None:  # stateless; nothing to release
        return None


def _drive_single_server(spec):
    """The legacy single-server body: boot, load, measure, report.

    Pure function of ``spec``: same spec, same result, in any process
    (the serial-vs-parallel determinism guarantee rests here).
    """
    from ..exec.spec import RunResult, metric_samples

    t0 = time.perf_counter()
    bench = TestBench(
        BenchConfig(workload=spec.workload, hardware=spec.hardware, seed=spec.seed),
        run_index=spec.run_index,
    )
    if spec.total_rate_rps is not None:
        total_rate = spec.total_rate_rps
    else:
        per_us = bench.server.arrival_rate_for_utilization(spec.target_utilization)
        total_rate = per_us * 1e6
    rate_per_instance = total_rate / spec.num_instances
    instances = []
    for i in range(spec.num_instances):
        tm_cfg = TreadmillConfig(
            rate_rps=rate_per_instance,
            connections=spec.connections_per_instance,
            warmup_samples=spec.warmup_samples,
            measurement_samples=spec.measurement_samples_per_instance,
            keep_raw=spec.keep_raw,
        )
        instances.append(TreadmillInstance(bench, f"client{i}", tm_cfg))
    for inst in instances:
        inst.start()
    # The event loop allocates no reference cycles; cyclic-GC passes in
    # the middle of a run are pure overhead.  Restore the collector's
    # prior state even on error.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        bench.run_to_completion(instances)
    finally:
        if gc_was_enabled:
            gc.enable()

    reports = [inst.report() for inst in instances]
    return _finish_single(
        spec,
        reports,
        server_utilization=bench.server.measured_utilization(),
        client_utilizations={
            name: client.utilization() for name, client in bench.clients.items()
        },
        events_processed=bench.sim.events_processed,
        wall_s=time.perf_counter() - t0,
    )


def _finish_single(
    spec, reports, *, server_utilization, client_utilizations,
    events_processed, wall_s,
):
    """Metric aggregation + RunResult assembly shared by the serial
    and partitioned single-server paths (one assembly, one byte
    layout)."""
    from ..exec.spec import RunResult, metric_samples

    samples_by_client = {r.name: metric_samples(r) for r in reports}
    metrics = {
        q: aggregate_quantile(samples_by_client, q, combine=spec.combine)
        for q in spec.quantiles
    }
    return RunResult(
        run_index=spec.run_index,
        reports=reports,
        metrics=metrics,
        server_utilization=server_utilization,
        client_utilizations=client_utilizations,
        spec_digest=spec.digest(),
        wall_s=wall_s,
        events_processed=events_processed,
    )


# ----------------------------------------------------------------------
# partitioned execution (sharded sub-kernels, bit-identical to serial)
# ----------------------------------------------------------------------
def build_single_partitioned(spec, n_shards: int):
    """Build the single-server bench sharded across ``n_shards``.

    Pure function of ``(spec, n_shards)``; every worker process calls
    this identically and executes only its own shard.  The single
    server keeps shard 0; clients round-robin over the remaining
    shards (one rack, so the split is within-rack).
    """
    from ..sim.partition import PartitionedBuild, PartitionedSimulator, assign_shards

    config = BenchConfig(
        workload=spec.workload, hardware=spec.hardware, seed=spec.seed
    )
    hosts = [(config.server_name, config.server_rack)]
    hosts += [(f"client{i}", config.server_rack) for i in range(spec.num_instances)]
    partition = PartitionedSimulator(n_shards)
    partition.assign(assign_shards(hosts, n_shards))
    bench = TestBench(config, run_index=spec.run_index, partition=partition)
    if spec.total_rate_rps is not None:
        total_rate = spec.total_rate_rps
    else:
        per_us = bench.server.arrival_rate_for_utilization(spec.target_utilization)
        total_rate = per_us * 1e6
    rate_per_instance = total_rate / spec.num_instances
    instances = []
    for i in range(spec.num_instances):
        tm_cfg = TreadmillConfig(
            rate_rps=rate_per_instance,
            connections=spec.connections_per_instance,
            warmup_samples=spec.warmup_samples,
            measurement_samples=spec.measurement_samples_per_instance,
            keep_raw=spec.keep_raw,
        )
        instances.append(TreadmillInstance(bench, f"client{i}", tm_cfg))
    instance_shards = {}
    for inst in instances:
        shard = partition.shard_of(inst.name)
        instance_shards[inst.name] = shard
        inst.on_done = partition.completion_recorder(shard)
        inst.start()
    return PartitionedBuild(
        partition=partition,
        bench=bench,
        instances=instances,
        antagonists=[],
        instance_shards=instance_shards,
        servers=[
            (
                partition.shard_of(config.server_name),
                config.server_name,
                bench.server,
            )
        ],
        lookahead=bench.topology.lookahead_us(),
    )


def merge_single_partials(spec, partials, wall_s: float):
    """Merge per-shard partial results into the single-server RunResult.

    Used by both execution modes — the in-process reference collects
    the same partial dicts locally that workers ship over the wire —
    so there is exactly one merge path to pin bit-identical.
    """
    reports_by = {}
    client_utils_by = {}
    server_utils_by = {}
    events = 0
    for partial in partials:
        reports_by.update(partial["reports"])
        client_utils_by.update(partial["client_utils"])
        server_utils_by.update(partial["server_utils"])
        events += partial["events"]
    names = [f"client{i}" for i in range(spec.num_instances)]
    return _finish_single(
        spec,
        [reports_by[name] for name in names],
        server_utilization=server_utils_by[next(iter(server_utils_by))],
        client_utilizations={name: client_utils_by[name] for name in names},
        events_processed=events,
        wall_s=wall_s,
    )


def _drive_single_partitioned(spec, n_shards: int, mode: str):
    from ..sim.partition import collect_partial, drive_partitioned

    if mode == "process":
        from .partitionproc import run_partitioned_process

        return run_partitioned_process(
            spec,
            n_shards,
            builder_ref="repro.measure.simbackend:build_single_partitioned",
            merge=merge_single_partials,
        )
    if mode != "inproc":
        raise ValueError(f"unknown partition_mode {mode!r}")
    t0 = time.perf_counter()
    build = build_single_partitioned(spec, n_shards)
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        drive_partitioned(build)
    finally:
        if gc_was_enabled:
            gc.enable()
    partials = [collect_partial(build, s) for s in range(n_shards)]
    return merge_single_partials(spec, partials, time.perf_counter() - t0)


register_measurement_backend(
    "sim",
    lambda options: SimBackend(options),
    SimOptions,
    summary="virtual-time discrete-event bench (deterministic, cacheable)",
)
