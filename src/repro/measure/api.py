"""The formal MeasurementBackend API: protocol, capabilities, registry.

This module is the contract between the *measurement methodology*
(warm-up/calibration/measurement phases, open-loop arrivals,
per-instance-then-aggregate metrics, repeat-until-converged) and the
*target under test*.  It deliberately mirrors the Executor API in
:mod:`repro.exec.api`: a :class:`typing.Protocol` so third-party
backends need not inherit anything, a frozen self-description
(:class:`BenchCapabilities`), and a named registry with per-backend
option dataclasses.

The verb is::

    backend.prepare(spec)  ->  MeasurementRun
    run.drive()            ->  RunResult      (phases driven, reports
                                               extracted, aggregated)

and :func:`measure_spec` is the one dispatcher every executor and
driver funnels through: it reads ``spec.backend`` (absent or ``"sim"``
means the simulator, preserving every historical digest) and routes to
the registered backend.

Capability flags matter to callers:

* ``deterministic`` — equal spec ⇒ bit-identical result.  Only
  deterministic backends participate in the result cache and the
  bit-identity CI gates; the live backend says ``False`` here and is
  therefore *never* cached (a wall-clock measurement is a sample, not
  a value).
* ``wall_clock`` — latencies are real elapsed time, not virtual time.
* ``fault_hookable`` — the target honours ``repro.faults``-style
  duck-typed ``fire(site)`` hook points (the reference server does).
* ``scenarios`` — accepts scenario-carrying specs (N fleets x M pools).
* ``utilization_targeting`` — can resolve ``target_utilization`` specs
  by itself (the simulator knows its service model; a live endpoint
  needs an absolute ``total_rate_rps``).
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterator,
    Optional,
    Protocol,
    Tuple,
    Type,
    runtime_checkable,
)

__all__ = [
    "MEASUREMENT_API_VERSION",
    "BenchCapabilities",
    "MeasurementRun",
    "MeasurementBackend",
    "MeasurementBackendInfo",
    "register_measurement_backend",
    "available_measurement_backends",
    "measurement_backend_info",
    "make_measurement_backend",
    "set_backend_defaults",
    "get_backend_defaults",
    "backend_defaults",
    "backend_is_deterministic",
    "measure_spec",
]

#: Version of the MeasurementBackend contract.  Bump on any change to
#: the protocol surface or the meaning of a capability flag; backends
#: may check it at registration time.
#:
#: v2: the dispatcher attaches a validity audit
#: (:class:`repro.guards.GuardReport`) to every result it returns, and
#: :class:`BenchCapabilities` grew the optional ``guard_evidence``
#: flag.  The protocol surface (``prepare -> drive``, ``capabilities``,
#: ``close``) is unchanged, so v1 backends keep working verbatim — the
#: compat shim is that guards degrade to ``skip``/structural verdicts
#: when a backend supplies no evidence channels, and results that
#: reject attribute assignment are returned un-audited rather than
#: failed.
#:
#: v3: the ``scenarios`` capability is no longer a simulator-only
#: promise — the live backend accepts scenario-carrying specs (fleets
#: routed to M real endpoints via ``LiveOptions.pool_targets``) and
#: returns per-(fleet, pool) ``group_metrics`` like the simulator.
#: ``measure_spec``'s scenario gate is unchanged (it still consults
#: ``capabilities().scenarios``), so v2 backends keep working
#: verbatim; only code that *assumed* ``scenarios`` implied
#: ``backend == "sim"`` must re-check the flag instead.
MEASUREMENT_API_VERSION = 3


# ----------------------------------------------------------------------
# capabilities & protocol
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BenchCapabilities:
    """A measurement backend's self-description.

    ``deterministic`` is the load-bearing flag: caches and bit-identity
    gates consult it, and a backend that cannot promise equal spec ⇒
    bit-identical result must say so or it will poison the cache.
    """

    #: Registry name of the backend ("sim", "live", ...).
    backend: str
    #: Equal spec ⇒ bit-identical result (the caching contract).
    deterministic: bool = True
    #: Latencies are wall-clock time, not virtual time.
    wall_clock: bool = False
    #: The target honours duck-typed ``fire(site)`` fault hooks.
    fault_hookable: bool = False
    #: Accepts scenario-carrying specs (N fleets x M pools).
    scenarios: bool = False
    #: Can resolve ``target_utilization`` specs without an absolute rate.
    utilization_targeting: bool = False
    #: The backend supplies guard evidence channels beyond the shared
    #: report stream (client probes, send-lag summaries, health
    #: telemetry) for the repro.guards validity detectors.  v1 backends
    #: never set this; detectors whose channel is missing report
    #: ``skip`` instead of guessing (the API-v2 compat shim).
    guard_evidence: bool = False


@runtime_checkable
class MeasurementRun(Protocol):
    """One prepared experiment, ready to drive.

    ``drive()`` runs the full warm-up/calibration/measurement phase
    machine against the target and returns a
    :class:`~repro.exec.spec.RunResult` whose per-instance
    :class:`~repro.core.treadmill.InstanceReport`\\ s were aggregated by
    the paper's per-instance-then-combine rule.
    """

    def drive(self) -> object:
        """Execute the prepared run; returns a ``RunResult``."""
        ...


@runtime_checkable
class MeasurementBackend(Protocol):
    """Structural interface every measurement backend satisfies.

    ``prepare`` validates the spec against the backend's capabilities
    (e.g. the live backend rejects ``target_utilization`` specs with a
    clear error) and returns a :class:`MeasurementRun`; ``close`` must
    be idempotent.
    """

    def prepare(self, spec: object) -> MeasurementRun:
        """Validate ``spec`` and stage one independent experiment."""
        ...

    def capabilities(self) -> BenchCapabilities:
        """Static self-description of this backend instance."""
        ...

    def close(self) -> None:
        """Release any held resources (idempotent)."""
        ...


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
#: factory(options) -> MeasurementBackend
MeasurementFactory = Callable[[object], MeasurementBackend]


@dataclass(frozen=True)
class MeasurementBackendInfo:
    """One registry entry."""

    name: str
    factory: MeasurementFactory
    options: Type[object]
    summary: str = ""


_REGISTRY: Dict[str, MeasurementBackendInfo] = {}

#: Built-in backends register lazily on first lookup, so importing
#: this module alone stays cheap and cycle-free (the sim backend pulls
#: in the whole simulator; the live backend pulls in asyncio plumbing).
_BUILTIN_MODULES: Dict[str, str] = {
    "sim": "repro.measure.simbackend",
    "live": "repro.live.driver",
}


def register_measurement_backend(
    name: str,
    factory: MeasurementFactory,
    options: Type[object],
    summary: str = "",
) -> None:
    """Register (or re-register) a measurement backend under ``name``.

    ``factory(options)`` must return an object satisfying
    :class:`MeasurementBackend`.  Third-party targets (a memcached
    binary, an HTTP service mesh, a hardware testbed) register here
    and instantly become reachable from ``RunSpec(backend=name)``,
    every executor, and the CLI.
    """
    if not name or not isinstance(name, str):
        raise ValueError("measurement backend name must be a non-empty string")
    if not dataclasses.is_dataclass(options):
        raise TypeError("options must be a dataclass type")
    _REGISTRY[name] = MeasurementBackendInfo(
        name=name, factory=factory, options=options, summary=summary
    )


def _ensure_builtin(name: str) -> None:
    if name in _REGISTRY:
        return
    module = _BUILTIN_MODULES.get(name)
    if module is not None:
        import importlib

        importlib.import_module(module)


def available_measurement_backends() -> Tuple[str, ...]:
    """Names of every registered measurement backend."""
    for name in _BUILTIN_MODULES:
        _ensure_builtin(name)
    return tuple(sorted(_REGISTRY))


def measurement_backend_info(name: str) -> MeasurementBackendInfo:
    """The registry entry for ``name`` (imports built-ins on demand)."""
    _ensure_builtin(name)
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown measurement backend {name!r}; available: "
            f"{', '.join(available_measurement_backends())}"
        ) from None


# ----------------------------------------------------------------------
# per-backend option defaults (process-wide, scopeable)
# ----------------------------------------------------------------------
_OPTION_DEFAULTS: Dict[str, Dict[str, object]] = {}


def _valid_fields(info: MeasurementBackendInfo) -> set:
    return {f.name for f in dataclasses.fields(info.options)}


def set_backend_defaults(name: str, **option_kwargs: object) -> None:
    """Set process-wide default options for backend ``name``.

    This is how environmental configuration (e.g. the live backend's
    target endpoint) reaches a backend without entering the spec's
    content digest: ``set_backend_defaults("live",
    target="tcp://10.0.0.5:7799")``.  Unknown option names raise.
    """
    info = measurement_backend_info(name)
    unknown = set(option_kwargs) - _valid_fields(info)
    if unknown:
        raise TypeError(
            f"unknown option(s) {sorted(unknown)} for measurement backend "
            f"{name!r}; valid: {sorted(_valid_fields(info))}"
        )
    _OPTION_DEFAULTS.setdefault(name, {}).update(option_kwargs)


def get_backend_defaults(name: str) -> Dict[str, object]:
    """The currently configured default options for ``name``."""
    return dict(_OPTION_DEFAULTS.get(name, {}))


@contextmanager
def backend_defaults(name: str, **option_kwargs: object) -> Iterator[Dict[str, object]]:
    """Scoped backend option defaults (restored on exit).

    The measurement twin of :func:`repro.exec.executors.execution`::

        with backend_defaults("live", target=f"tcp://127.0.0.1:{port}"):
            result = measure_spec(spec)          # spec.backend == "live"
    """
    saved = dict(_OPTION_DEFAULTS.get(name, {}))
    had = name in _OPTION_DEFAULTS
    try:
        set_backend_defaults(name, **option_kwargs)
        yield get_backend_defaults(name)
    finally:
        if had:
            _OPTION_DEFAULTS[name] = saved
        else:
            _OPTION_DEFAULTS.pop(name, None)


# ----------------------------------------------------------------------
# construction & dispatch
# ----------------------------------------------------------------------
def make_measurement_backend(
    name: str = "sim",
    *,
    options: object = None,
    **option_kwargs: object,
) -> MeasurementBackend:
    """Build a measurement backend from a registered name.

    Pass either a complete options dataclass or option kwargs (merged
    over the process-wide :func:`set_backend_defaults` for ``name``)::

        make_measurement_backend("live", target="tcp://127.0.0.1:7799")
        make_measurement_backend("sim")
    """
    info = measurement_backend_info(name)
    if options is not None:
        if option_kwargs:
            raise TypeError(
                "pass either an options dataclass or option kwargs, not both"
            )
        if not isinstance(options, info.options):
            raise TypeError(
                f"measurement backend {name!r} expects "
                f"{info.options.__name__}, got {type(options).__name__}"
            )
        return info.factory(options)
    effective = {**_OPTION_DEFAULTS.get(name, {}), **option_kwargs}
    unknown = set(effective) - _valid_fields(info)
    if unknown:
        raise TypeError(
            f"unknown option(s) {sorted(unknown)} for measurement backend "
            f"{name!r}; valid: {sorted(_valid_fields(info))}"
        )
    return info.factory(info.options(**effective))


#: Memoized backend instances, keyed by (name, effective options).
#: Backends are cheap, stateless-between-runs objects; memoizing keeps
#: the per-spec dispatch in ``measure_spec`` allocation-free on the
#: hot path (thousands of sim specs per sweep).
_INSTANCES: Dict[Tuple[str, str], MeasurementBackend] = {}


def _backend_instance(name: str) -> MeasurementBackend:
    key = (name, repr(sorted(_OPTION_DEFAULTS.get(name, {}).items())))
    backend = _INSTANCES.get(key)
    if backend is None:
        backend = make_measurement_backend(name)
        _INSTANCES[key] = backend
    return backend


def backend_is_deterministic(name: str) -> bool:
    """Whether ``name``'s results may be cached / bit-identity-gated.

    Unknown names answer ``False``: an unregistered backend cannot
    promise the caching contract, so the cache must not store for it.
    """
    if name == "sim":
        return True
    try:
        backend = _backend_instance(name)
    except KeyError:
        return False
    return bool(backend.capabilities().deterministic)


def measure_spec(spec: object) -> object:
    """Execute one independent experiment on its measurement backend.

    The single execution primitive of the library: every executor's
    default task, the procedure, attribution, sweeps, and the CLI all
    funnel through here.  Dispatch reads ``spec.backend`` (absent or
    ``"sim"`` selects the simulator — the historical semantics, digest
    and all) and routes through the registered backend's
    ``prepare -> drive`` pair.

    Scenario-carrying specs are refused with a clear error when the
    backend lacks the ``scenarios`` capability, rather than failing
    somewhere inside the backend.
    """
    name = getattr(spec, "backend", "sim") or "sim"
    backend = _backend_instance(name)
    if getattr(spec, "scenario", None) is not None:
        caps = backend.capabilities()
        if not caps.scenarios:
            raise ValueError(
                f"measurement backend {name!r} cannot run scenario-carrying "
                "specs (capability 'scenarios' is False); lower the scenario "
                "to plain RunSpecs or use the 'sim' backend"
            )
    result = backend.prepare(spec).drive()
    return _attach_guards(spec, result, backend)


def _attach_guards(spec: object, result: object, backend: MeasurementBackend) -> object:
    """Audit ``result`` with the validity detectors (API v2).

    Runs inside ``measure_spec`` — i.e. inside whatever worker process
    executed the spec — so verdicts are computed once from the
    bit-identical result and ride along in the executor's pickles:
    serial, process-pool, and cluster lanes all see the same
    ``result.guards``.  Third-party results that reject attribute
    assignment (slots, frozen) are returned un-audited; the guard
    layer never turns a successful measurement into a failure.
    """
    if getattr(result, "guards", None) is not None:
        return result  # already audited (e.g. a backend that delegates here)
    from ..guards.api import evaluate_run, maybe_enforce

    try:
        caps = backend.capabilities()
    except Exception:  # noqa: BLE001 — capabilities are advisory here
        caps = None
    report = evaluate_run(spec, result, capabilities=caps)
    try:
        result.guards = report
    except (AttributeError, TypeError):
        pass
    # No-op in (default) advisory mode; under strict enforcement a
    # failed audit raises GuardFailureError here, inside the
    # measurement path, so every caller of measure_spec is covered.
    maybe_enforce(report, context=str(getattr(spec, "tag", "") or "run"))
    return result
