"""repro.measure — the formal MeasurementBackend layer.

Treadmill's contribution is a measurement *procedure* — open-loop
arrivals, warm-up/calibration/measurement phases, per-instance metric
extraction then aggregation, repeat-until-converged — not a simulator.
This package makes that separation structural: a
:class:`~repro.measure.api.MeasurementBackend` turns one
:class:`~repro.exec.spec.RunSpec` into one
:class:`~repro.exec.spec.RunResult`, and everything above it
(procedure, attribution, sweeps, executors, cache, CLI) is
target-agnostic.

Two backends ship with the library:

* ``"sim"`` (:mod:`repro.measure.simbackend`) — the historical
  virtual-time discrete-event bench; deterministic, cacheable,
  bit-identical across executors.
* ``"live"`` (:mod:`repro.live.driver`) — a wall-clock asyncio
  open-loop driver against a real TCP endpoint; same phases, same
  aggregation, *not* deterministic and therefore never cached.

See ``src/repro/exec/API.md`` ("Measurement backends") for the
implementer-facing contract.
"""

from .api import (
    MEASUREMENT_API_VERSION,
    BenchCapabilities,
    MeasurementBackend,
    MeasurementBackendInfo,
    MeasurementRun,
    available_measurement_backends,
    backend_defaults,
    backend_is_deterministic,
    make_measurement_backend,
    measure_spec,
    measurement_backend_info,
    register_measurement_backend,
    set_backend_defaults,
)

__all__ = [
    "MEASUREMENT_API_VERSION",
    "BenchCapabilities",
    "MeasurementBackend",
    "MeasurementBackendInfo",
    "MeasurementRun",
    "available_measurement_backends",
    "backend_defaults",
    "backend_is_deterministic",
    "make_measurement_backend",
    "measure_spec",
    "measurement_backend_info",
    "register_measurement_backend",
    "set_backend_defaults",
]
