"""Multi-process partitioned execution: one worker per sub-kernel.

The second execution mode behind the partitioned-simulation API
(:mod:`repro.sim.partition`): each shard runs in its own OS process,
exchanging window-boundary frames with the coordinating parent over
the distributed executor's length-prefixed pickle protocol
(:mod:`repro.exec.protocol`).

The design leans on determinism rather than state shipping: a worker
does not receive a serialized simulation — it receives the *spec* plus
a builder reference, rebuilds the entire bench exactly as every other
process does (builders are pure functions of ``(spec, n_shards)``),
and then executes only its own shard.  The parent never builds the
bench at all; it cross-checks the wiring metadata every worker reports
at readiness (lookahead, channel routes, instance count, antagonist
shards, spec digest) and refuses to run if any two workers disagree —
version or environment skew surfaces as a clean error, not silent
divergence.

Window protocol (2 round trips per window, same shapes the in-process
:class:`~repro.sim.partition.LocalShardHandle` consumes directly):

* ``exchange`` — boundary imports + antagonist-stop controls in, the
  shard's next event time out;
* ``advance`` — the barrier in; exports, completions, executed count,
  and local clock out;
* ``finalize`` — the global clock in; the shard's partial result out.

Failure containment: every socket carries a hard receive deadline, a
worker that observes an out-of-order window sequence replies with an
error and exits, and the parent kills all workers on any protocol
fault — a lost or duplicated boundary frame therefore produces a
clean :class:`~repro.sim.engine.SimulationError`, never a hang and
never a silently wrong result.  The ``partition_desync`` chaos fault
(:mod:`repro.faults`) injects exactly those frame drops/duplications
at the ``partition.frame`` site to pin this contract.
"""

from __future__ import annotations

import gc
import os
import secrets
import socket
import subprocess
import sys
import time
from typing import Dict, List, Optional

from ..exec.protocol import ProtocolError, recv_msg, resolve_task, send_msg
from ..sim.engine import SimulationError
from ..sim.partition import LocalShardHandle, collect_partial, run_windows

__all__ = ["PARTITION_PROTOCOL_VERSION", "run_partitioned_process"]

#: Version pin for the window-frame protocol (checked at hello).
PARTITION_PROTOCOL_VERSION = 1

#: The chaos-injection site for window-boundary frames.
FRAME_SITE = "partition.frame"


# ----------------------------------------------------------------------
# coordinator side
# ----------------------------------------------------------------------
class _RemoteShardHandle:
    """Coordinator-side shard handle speaking the window protocol.

    Duck-types :class:`~repro.sim.partition.LocalShardHandle`, so
    :func:`run_windows` drives remote shards with the identical loop.
    The begin/end split pipelines the fan-out: all shards receive
    their frames before any reply is awaited.
    """

    def __init__(self, sock: socket.socket, shard: int, fault=None):
        self._sock = sock
        self.shard = shard
        self._fault = fault
        self.partial: Optional[Dict[str, object]] = None

    def _send(self, msg: Dict[str, object]) -> None:
        if self._fault is not None and msg["type"] == "exchange":
            action = self._fault.fire(FRAME_SITE)
            if action is not None and action.kind == "partition_desync":
                if action.nth % 2 == 1:
                    # Drop the boundary frame: the worker stalls, the
                    # coordinator's receive deadline converts the stall
                    # into a clean SimulationError.
                    return
                # Duplicate it: the worker sees an out-of-order window
                # sequence and reports a protocol error.
                send_msg(self._sock, msg)
        send_msg(self._sock, msg)

    def _recv(self, expect: str) -> Dict[str, object]:
        msg = recv_msg(self._sock)
        if msg is None:
            raise SimulationError(
                f"partition worker {self.shard} closed its connection mid-run"
            )
        if msg["type"] == "error":
            raise SimulationError(
                f"partition worker {self.shard}: {msg.get('message', 'unknown error')}"
            )
        if msg["type"] != expect:
            raise SimulationError(
                f"partition worker {self.shard} sent {msg['type']!r}, "
                f"expected {expect!r}"
            )
        return msg

    def begin_exchange(self, wseq: int, imports, controls) -> None:
        self._send(
            {"type": "exchange", "wseq": wseq, "imports": imports, "controls": controls}
        )

    def end_exchange(self) -> float:
        return self._recv("exchanged")["next_time"]

    def begin_advance(self, wseq: int, barrier: float) -> None:
        self._send({"type": "advance", "wseq": wseq, "barrier": barrier})

    def end_advance(self):
        msg = self._recv("advanced")
        return msg["exports"], msg["completions"], msg["executed"], msg["now"]

    def finalize(self, global_now: float) -> None:
        self._send({"type": "finalize", "now": global_now})
        self.partial = self._recv("partial")["data"]


def _repro_pythonpath() -> str:
    """The import root of this package, prepended to PYTHONPATH so
    spawned workers resolve ``repro`` regardless of how the parent
    was launched."""
    import repro

    root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = os.environ.get("PYTHONPATH", "")
    return root + (os.pathsep + existing if existing else "")


def _spawn_workers(n_shards: int, spawn_timeout_s: float, window_timeout_s: float):
    """Start one worker per shard and complete the hello handshake."""
    from ..exec.spec import SPEC_SCHEMA

    token = secrets.token_hex(16)
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(n_shards)
    listener.settimeout(spawn_timeout_s)
    port = listener.getsockname()[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = _repro_pythonpath()
    procs = [
        subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.measure.partitionproc",
                "--connect",
                f"127.0.0.1:{port}",
                "--token",
                token,
                "--shard",
                str(shard),
            ],
            env=env,
            stdin=subprocess.DEVNULL,
        )
        for shard in range(n_shards)
    ]
    socks: List[Optional[socket.socket]] = [None] * n_shards
    try:
        for _ in range(n_shards):
            sock, _addr = listener.accept()
            sock.settimeout(window_timeout_s)
            hello = recv_msg(sock)
            if (
                hello is None
                or hello.get("type") != "phello"
                or hello.get("token") != token
            ):
                raise SimulationError("partition worker failed its hello handshake")
            if hello.get("protocol") != PARTITION_PROTOCOL_VERSION or hello.get(
                "spec_schema"
            ) != SPEC_SCHEMA:
                raise SimulationError(
                    "partition worker version skew: "
                    f"protocol {hello.get('protocol')} / schema "
                    f"{hello.get('spec_schema')} vs coordinator "
                    f"{PARTITION_PROTOCOL_VERSION} / {SPEC_SCHEMA}"
                )
            shard = hello["shard"]
            if not 0 <= shard < n_shards or socks[shard] is not None:
                raise SimulationError(f"partition worker claimed bad shard {shard!r}")
            socks[shard] = sock
    finally:
        listener.close()
    return procs, socks


def _shutdown(procs, socks) -> None:
    for sock in socks:
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=5.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def run_partitioned_process(
    spec,
    n_shards: int,
    *,
    builder_ref: str,
    merge,
    fault=None,
    window_timeout_s: float = 120.0,
    spawn_timeout_s: float = 60.0,
):
    """Execute ``spec`` sharded across ``n_shards`` worker processes.

    ``builder_ref`` is a ``module:function`` reference to the pure
    build function each worker runs; ``merge`` assembles the final
    :class:`~repro.exec.spec.RunResult` from the shipped partials.
    ``fault`` (a :class:`~repro.faults.FaultInjector`) enables
    ``partition_desync`` injection on boundary frames.

    Any transport, timeout, or protocol failure kills every worker and
    raises :class:`~repro.sim.engine.SimulationError` — never a hang.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    t0 = time.perf_counter()
    procs, socks = [], []
    try:
        procs, socks = _spawn_workers(n_shards, spawn_timeout_s, window_timeout_s)
        build_msg = {
            "type": "build",
            "builder": builder_ref,
            "spec": spec,
            "n_shards": n_shards,
        }
        for sock in socks:
            send_msg(sock, build_msg)
        handles = [
            _RemoteShardHandle(sock, shard, fault=fault)
            for shard, sock in enumerate(socks)
        ]
        metas = []
        for handle in handles:
            ready = handle._recv("ready")
            metas.append(
                (
                    ready["lookahead"],
                    ready["routes"],
                    ready["n_instances"],
                    tuple(ready["antagonist_shards"]),
                    ready["spec_digest"],
                )
            )
        if any(meta != metas[0] for meta in metas[1:]):
            raise SimulationError(
                "partition workers built divergent simulations "
                "(wiring metadata mismatch across processes)"
            )
        lookahead, routes, n_instances, antagonist_shards, _digest = metas[0]
        run_windows(
            handles,
            lookahead_us=lookahead,
            n_instances=n_instances,
            antagonist_shards=antagonist_shards,
            routes=routes,
        )
        partials = [handle.partial for handle in handles]
        return merge(spec, partials, time.perf_counter() - t0)
    except SimulationError:
        raise
    except (ProtocolError, OSError, EOFError, socket.timeout) as exc:
        raise SimulationError(
            f"partitioned multi-process run failed: {exc}"
        ) from exc
    finally:
        _shutdown(procs, socks)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _worker_error(sock: socket.socket, message: str) -> None:
    try:
        send_msg(sock, {"type": "error", "message": message})
    except OSError:
        pass


def _worker_loop(sock: socket.socket, shard: int) -> int:
    msg = recv_msg(sock)
    if msg is None or msg.get("type") != "build":
        _worker_error(sock, "expected a build message")
        return 1
    try:
        builder = resolve_task(msg["builder"])
        build = builder(msg["spec"], msg["n_shards"])
        partition = build.partition
        partition.set_lookahead(build.lookahead)
    except Exception as exc:  # ship the build failure, don't die silently
        _worker_error(sock, f"build failed: {exc!r}")
        return 1
    handle = LocalShardHandle(
        partition, shard, [proc for _, proc in build.antagonists]
    )
    send_msg(
        sock,
        {
            "type": "ready",
            "shard": shard,
            "lookahead": build.lookahead,
            "routes": partition.routes,
            "n_instances": len(build.instances),
            "antagonist_shards": [s for s, _ in build.antagonists],
            "spec_digest": msg["spec"].digest(),
        },
    )
    # Same GC discipline as the serial drivers: no reference cycles on
    # the event path, so mid-run collector passes are pure overhead.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    expect_wseq = 1
    expect_phase = "exchange"
    try:
        while True:
            msg = recv_msg(sock)
            if msg is None:
                return 1  # coordinator went away
            mtype = msg["type"]
            if mtype == "finalize":
                handle.finalize(msg["now"])
                partial = collect_partial(build, shard)
                send_msg(sock, {"type": "partial", "shard": shard, "data": partial})
                return 0
            if mtype not in ("exchange", "advance"):
                _worker_error(sock, f"unexpected frame {mtype!r}")
                return 1
            if mtype != expect_phase or msg["wseq"] != expect_wseq:
                # A duplicated or reordered window-boundary frame.
                # Refusing (rather than guessing) is what turns a
                # desynchronized coordinator into a clean error.
                _worker_error(
                    sock,
                    f"window desync: got {mtype} wseq={msg['wseq']}, "
                    f"expected {expect_phase} wseq={expect_wseq}",
                )
                return 1
            if mtype == "exchange":
                handle.begin_exchange(msg["wseq"], msg["imports"], msg["controls"])
                send_msg(
                    sock,
                    {
                        "type": "exchanged",
                        "wseq": msg["wseq"],
                        "next_time": handle.end_exchange(),
                    },
                )
                expect_phase = "advance"
            else:
                handle.begin_advance(msg["wseq"], msg["barrier"])
                exports, completions, executed, now = handle.end_advance()
                send_msg(
                    sock,
                    {
                        "type": "advanced",
                        "wseq": msg["wseq"],
                        "exports": exports,
                        "completions": completions,
                        "executed": executed,
                        "now": now,
                    },
                )
                expect_phase = "exchange"
                expect_wseq += 1
    finally:
        if gc_was_enabled:
            gc.enable()


def _worker_main(argv: List[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(prog="repro-partition-worker")
    parser.add_argument("--connect", required=True, metavar="HOST:PORT")
    parser.add_argument("--token", required=True)
    parser.add_argument("--shard", required=True, type=int)
    args = parser.parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    sock = socket.create_connection((host, int(port)), timeout=60.0)
    # Window cadence is driven by the coordinator; a long receive
    # deadline here only bounds how long an orphaned worker lingers.
    sock.settimeout(600.0)
    from ..exec.spec import SPEC_SCHEMA

    send_msg(
        sock,
        {
            "type": "phello",
            "shard": args.shard,
            "token": args.token,
            "protocol": PARTITION_PROTOCOL_VERSION,
            "spec_schema": SPEC_SCHEMA,
        },
    )
    try:
        return _worker_loop(sock, args.shard)
    except (ProtocolError, OSError, EOFError, socket.timeout) as exc:
        _worker_error(sock, f"worker transport failure: {exc!r}")
        return 1
    finally:
        try:
            sock.close()
        except OSError:
            pass


if __name__ == "__main__":
    sys.exit(_worker_main(sys.argv[1:]))
