"""Bench: regenerate Table I (feature matrix) and Table II (hardware)."""

import pytest

from repro.experiments import tab01_features


@pytest.mark.artifact("tab1")
def test_tab01_feature_tables(benchmark, show):
    result = benchmark.pedantic(
        tab01_features.run, kwargs={"scale": "default"}, rounds=1, iterations=1
    )
    show(tab01_features.render(result))
    # Table I shape: Treadmill is the only tool handling all five rows.
    assert result.treadmill_complete
    per_tool = {
        tool: sum(cols[tool] for cols in result.features.values())
        for tool in ("YCSB", "Faban", "CloudSuite", "Mutilate")
    }
    assert all(score < len(result.features) for score in per_tool.values())
    # Table II shape: the simulated spec names the paper's subsystems.
    assert "NUMA" in result.hardware["DRAM"]
    assert "RSS" in result.hardware["Ethernet"]
