"""Bench: regenerate Fig. 10 (mcrouter average factor impacts).

Paper shape (Finding 8): Turbo Boost helps mcrouter and its benefit is
damped at high load (thermal headroom); the numa factor matters far
less than for memcached.
"""

import pytest

from repro.experiments import fig08_factor_impact as fig08
from repro.experiments import fig10_mcrouter_impact as fig10


@pytest.mark.artifact("fig10")
def test_fig10_mcrouter_factor_impacts(benchmark, show):
    result = benchmark.pedantic(
        fig10.run, kwargs={"scale": "default"}, rounds=1, iterations=1
    )
    show(fig10.render(result))
    low = result.factor_impacts("low", 0.99)
    high = result.factor_impacts("high", 0.99)
    assert low["turbo"] < 0.5  # turbo helps at low load
    # numa matters less than for memcached (p95 is the stable contrast).
    memcached = fig08.run(scale="default")
    assert abs(result.factor_impacts("high", 0.95)["numa"]) < abs(
        memcached.factor_impacts("high", 0.95)["numa"]
    )
    # dvfs dominates at low load here too (Finding 7).
    assert low["dvfs"] < 0
    assert abs(low["dvfs"]) > abs(low["numa"])
