"""Bench: regenerate Fig. 3 (client-side queueing bias vs utilization).

Paper shape: in the single-client setup the client and network latency
components grow with server utilization; in the multi-client setup
they stay flat and the server component dominates the growth.
"""

import pytest

from repro.experiments import fig03_queueing_bias


@pytest.mark.artifact("fig3")
def test_fig03_single_vs_multi_client(benchmark, show):
    result = benchmark.pedantic(
        fig03_queueing_bias.run, kwargs={"scale": "default"}, rounds=1, iterations=1
    )
    show(fig03_queueing_bias.render(result))
    assert result.component_growth("single-client", "client") > 1.15
    assert result.component_growth("single-client", "network") > 1.02
    assert result.component_growth("multi-client", "client") < 1.03
    assert result.component_growth("multi-client", "network") < 1.03
    assert result.component_growth("multi-client", "server") > 2.0
