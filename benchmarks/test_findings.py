"""Bench: the Section V findings report at default scale.

Derived from the same cached sweeps as Figs. 7-10, so this bench is
nearly free when run with the rest of the suite.
"""

import pytest

from repro.experiments import findings


@pytest.mark.artifact("findings")
def test_findings_report(benchmark, show):
    result = benchmark.pedantic(
        findings.run, kwargs={"scale": "default"}, rounds=1, iterations=1
    )
    show(findings.render(result))
    assert result.holding >= 7
    by_number = {c.number: c for c in result.checks}
    # The load-bearing findings must hold at default scale.
    for n in (1, 2, 5, 6, 7):
        assert by_number[n].holds, by_number[n].measured
