"""Bench: regenerate Fig. 4 (performance hysteresis across restarts).

Paper shape: each run's p99 estimate converges within the run, yet
independent runs converge to different values (the paper saw 15-67%
deviations from the average), so only repetition + aggregation works.
"""

import pytest

from repro.experiments import fig04_hysteresis


@pytest.mark.artifact("fig4")
def test_fig04_hysteresis(benchmark, show):
    result = benchmark.pedantic(
        fig04_hysteresis.run, kwargs={"scale": "default"}, rounds=1, iterations=1
    )
    show(fig04_hysteresis.render(result))
    # Within-run convergence for most runs...
    stable = result.within_run_stable(window=4, rel_tol=0.1)
    assert sum(stable) >= len(stable) - 1
    # ...but across-run disagreement that more samples cannot fix.
    assert result.max_deviation_pct > 4.0
