"""Bench: regenerate Table IV (quantile-regression coefficients,
memcached at high utilization).

Paper shape: numa hurts the tail, turbo helps, nic alone hurts at high
load, dvfs is small/insignificant at high load; standard errors grow
from p50 to p99; several interactions are significant.
"""

import numpy as np
import pytest

from repro.experiments import tab04_regression


@pytest.mark.artifact("tab4")
def test_tab04_quantile_regression(benchmark, show):
    result = benchmark.pedantic(
        tab04_regression.run, kwargs={"scale": "default"}, rounds=1, iterations=1
    )
    show(tab04_regression.render(result))
    # Effect directions at the tail (paper: numa +56, turbo -29, nic +29).
    assert result.coef("numa", 0.99) > 0
    assert result.coef("turbo", 0.99) < 0
    assert result.coef("nic", 0.99) > 0
    # dvfs is small at high load relative to numa (paper: -8 vs +56).
    assert abs(result.coef("dvfs", 0.99)) < abs(result.coef("numa", 0.99))
    # Intercepts ordered and in the paper's order of magnitude.
    i50, i99 = result.coef("(Intercept)", 0.5), result.coef("(Intercept)", 0.99)
    assert 40 < i50 < 120
    assert 120 < i99 < 700
    # Finding 2: standard errors grow toward the tail.
    f50, f99 = result.report.fits[0.5], result.report.fits[0.99]
    assert np.median(f99.stderr) > np.median(f50.stderr)
    # Finding 5: interactions can be significant.
    sig = result.significant_terms(0.5)
    assert any(":" in term for term in sig) or len(sig) >= 2
