"""Bench: regenerate Fig. 2 (cross-client aggregation bias).

Paper shape: the cross-rack client contributes nearly all samples in
the top latency bins, so a pooled distribution's p99 is a function of
that single client, while per-instance metric aggregation is robust.
"""

import pytest

from repro.experiments import fig02_client_bias


@pytest.mark.artifact("fig2")
def test_fig02_cross_client_bias(benchmark, show):
    result = benchmark.pedantic(
        fig02_client_bias.run, kwargs={"scale": "default"}, rounds=1, iterations=1
    )
    show(fig02_client_bias.render(result))
    assert result.tail_share(result.outlier) > 0.9
    others = [v for k, v in result.per_client_p99.items() if k != result.outlier]
    assert result.per_client_p99[result.outlier] > 2 * max(others)
    assert result.pooled_p99 > 1.3 * result.aggregated_p99
