"""Bench: regenerate Fig. 6 (tool accuracy at 80% utilization).

Paper shape: CloudSuite cannot generate the load at all; Mutilate's
closed loop truncates the queueing distribution and underestimates the
open-loop p99 (paper: >2x); Treadmill keeps the same fixed kernel
offset it had at 10% utilization.
"""

import pytest

from repro.experiments import fig05_low_util, fig06_high_util


@pytest.mark.artifact("fig6")
def test_fig06_accuracy_high_utilization(benchmark, show):
    result = benchmark.pedantic(
        fig06_high_util.run, kwargs={"scale": "default"}, rounds=1, iterations=1
    )
    show(fig06_high_util.render(result))
    assert result.cloudsuite_saturated
    assert result.mutilate_underestimation() > 1.3
    # The Treadmill offset matches the low-utilization one (Fig. 5).
    low = fig05_low_util.run(scale="default")
    assert abs(result.treadmill_offset() - low.treadmill_offset_constant()) < 8.0
