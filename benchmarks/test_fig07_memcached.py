"""Bench: regenerate Fig. 7 (memcached per-configuration estimates).

Paper shape: the latency spread across configurations widens with both
load and quantile; NUMA-interleave configurations dominate the worst
cases at high load.
"""

import numpy as np
import pytest

from repro.experiments import fig07_memcached_estimates as fig07


@pytest.mark.artifact("fig7")
def test_fig07_memcached_config_estimates(benchmark, show):
    result = benchmark.pedantic(
        fig07.run, kwargs={"scale": "default"}, rounds=1, iterations=1
    )
    show(fig07.render(result))
    spread = lambda d: max(d.values()) - min(d.values())
    low99 = result.config_estimates("low", 0.99)
    high99 = result.config_estimates("high", 0.99)
    high50 = result.config_estimates("high", 0.5)
    # Finding 1: variance grows with utilization.
    assert spread(high99) > spread(low99)
    # Finding 2: variance grows with the quantile.
    assert spread(high99) > spread(high50)
    # Finding 6: the worst high-load configs are numa-interleave ones.
    worst = sorted(high99, key=high99.get)[-4:]
    assert sum(cfg[0] == 1 for cfg in worst) >= 3
