"""Bench: regenerate Fig. 11 (pseudo-R-squared of the regression models).

Paper shape: the factor models explain the majority of the observed
variance at every load level and percentile (paper: >= 0.90 on its
testbed; our scaled-down runs carry more quantile-estimation noise, so
the bar here is 'majority explained, best at the median' — see
EXPERIMENTS.md for the discussion).
"""

import pytest

from repro.experiments import fig11_goodness


@pytest.mark.artifact("fig11")
def test_fig11_pseudo_r2(benchmark, show):
    result = benchmark.pedantic(
        fig11_goodness.run, kwargs={"scale": "default"}, rounds=1, iterations=1
    )
    show(fig11_goodness.render(result))
    for value in result.r2.values():
        assert 0.0 <= value <= 1.0
    # The model must explain a majority of variance at the median at
    # every load level.
    for load in ("low", "mid", "high"):
        assert result.at(load, 0.5) > 0.5
    # And remain informative at the tail.
    assert result.at("high", 0.99) > 0.25
