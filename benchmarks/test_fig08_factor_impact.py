"""Bench: regenerate Fig. 8 (memcached average factor impacts).

Paper shape (Findings 6-7): numa-interleave increases latency most at
high load; dvfs=performance helps most at low load; the dominant
factor changes with the load level.
"""

import pytest

from repro.experiments import fig08_factor_impact as fig08


@pytest.mark.artifact("fig8")
def test_fig08_memcached_factor_impacts(benchmark, show):
    result = benchmark.pedantic(
        fig08.run, kwargs={"scale": "default"}, rounds=1, iterations=1
    )
    show(fig08.render(result))
    low = result.factor_impacts("low", 0.99)
    high = result.factor_impacts("high", 0.99)
    # Finding 6: numa hurts, and much more at high load.
    assert high["numa"] > 0
    assert high["numa"] > low["numa"]
    # Finding 3/7: dvfs=performance helps most at low load.
    assert low["dvfs"] < 0
    assert abs(low["dvfs"]) > abs(high["dvfs"]) - 2.0
    # Turbo helps on average at high load (paper: -29 us at p99).
    assert high["turbo"] < 0
    # Finding 7: the dominant factor differs between load levels.
    dominant_low = max(low, key=lambda f: abs(low[f]))
    dominant_high = max(high, key=lambda f: abs(high[f]))
    assert dominant_low != dominant_high
