"""Bench: regenerate Fig. 5 (tool accuracy at 10% utilization).

Paper shape: CloudSuite drastically overestimates the tail (client-side
queueing at ~90% client utilization); Mutilate overestimates moderately;
Treadmill tracks the tcpdump ground truth with a constant ~30 us
kernel-path offset at every quantile.
"""

import pytest

from repro.experiments import fig05_low_util


@pytest.mark.artifact("fig5")
def test_fig05_accuracy_low_utilization(benchmark, show):
    result = benchmark.pedantic(
        fig05_low_util.run, kwargs={"scale": "default"}, rounds=1, iterations=1
    )
    show(fig05_low_util.render(result))
    cs = result.runs["cloudsuite"]
    tm = result.runs["treadmill"]
    mu = result.runs["mutilate"]
    assert cs is not None and cs.reported_quantile(0.99) > 2.5 * cs.ground_truth_quantile(0.99)
    assert max(cs.client_utilizations.values()) > 0.7
    assert mu.offset_at(0.99) > tm.offset_at(0.99) - 5.0
    # Treadmill: constant offset across quantiles, near the 30 us kernel path.
    offsets = [tm.offset_at(q) for q in (0.5, 0.9, 0.99)]
    assert all(22.0 < o < 45.0 for o in offsets)
    assert max(offsets) - min(offsets) < 12.0
    assert max(tm.client_utilizations.values()) < 0.1
