"""Bench: regenerate Fig. 9 (mcrouter per-configuration estimates).

Paper shape: mcrouter's configuration spread is much narrower than
memcached's (compare Fig. 9's y-axis to Fig. 7's) because the router
barely touches connection-buffer memory.
"""

import pytest

from repro.experiments import fig07_memcached_estimates as fig07
from repro.experiments import fig09_mcrouter_estimates as fig09


@pytest.mark.artifact("fig9")
def test_fig09_mcrouter_config_estimates(benchmark, show):
    result = benchmark.pedantic(
        fig09.run, kwargs={"scale": "default"}, rounds=1, iterations=1
    )
    show(fig09.render(result))
    spread = lambda d: max(d.values()) - min(d.values())
    mcrouter_spread = spread(result.config_estimates("high", 0.95))
    memcached = fig07.run(scale="default")
    memcached_spread = spread(memcached.config_estimates("high", 0.95))
    assert mcrouter_spread < memcached_spread
    # Latency grows with quantile for every configuration.
    for coded, v50 in result.config_estimates("high", 0.5).items():
        assert result.config_estimates("high", 0.99)[coded] > v50
