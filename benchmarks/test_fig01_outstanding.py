"""Bench: regenerate Fig. 1 (outstanding requests, open vs closed loop).

Paper shape: the open-loop distribution has a long upper tail at 80%
utilization, while closed-loop controllers are structurally truncated
at their connection count and therefore underestimate queueing.
"""

import pytest

from repro.experiments import fig01_outstanding


@pytest.mark.artifact("fig1")
def test_fig01_outstanding_requests(benchmark, show):
    result = benchmark.pedantic(
        fig01_outstanding.run, kwargs={"scale": "default"}, rounds=1, iterations=1
    )
    show(fig01_outstanding.render(result))
    for n in (4, 8, 12):
        levels, _ = result.cdfs[f"Closed-Loop w/{n} Connections"]
        assert levels.max() <= n
    open_levels, _ = result.cdfs["Open-Loop"]
    assert open_levels.max() > 12
    assert result.quantile("Open-Loop", 0.99) > 2 * result.quantile(
        "Closed-Loop w/12 Connections", 0.99
    )
