"""Bench: regenerate Fig. 12 (before/after tuning).

Paper shape: adopting the configuration the attribution recommends for
p99 cuts the expected p99 substantially (paper: -43%) and cuts its
run-to-run dispersion much more (paper: -93%), while p50 moves less
(the recommendation optimizes the tail).
"""

import pytest

from repro.experiments import fig12_improvement


@pytest.mark.artifact("fig12")
def test_fig12_before_after_tuning(benchmark, show):
    result = benchmark.pedantic(
        fig12_improvement.run, kwargs={"scale": "default"}, rounds=1, iterations=1
    )
    show(fig12_improvement.render(result))
    assert result.latency_reduction_pct(0.99) > 10.0
    assert result.variance_reduction_pct(0.99) > 40.0
    assert result.variance_reduction_pct(0.99) > result.latency_reduction_pct(0.99)
    assert abs(result.latency_reduction_pct(0.5)) < result.latency_reduction_pct(0.99)
