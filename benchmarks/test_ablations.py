"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation isolates one Treadmill design decision and shows what
breaks without it:

* open-loop vs closed-loop control at the same offered load (the
  controller choice, Section II-A);
* Poisson vs deterministic inter-arrival gaps (the gap *distribution*
  matters, not just open-loop-ness);
* per-instance-then-aggregate vs pooled-distribution metrics
  (Section II-B / III-B);
* adaptive vs static histogram binning under rising latency
  (Section II-B).
"""

import numpy as np
import pytest

from repro.core.aggregation import aggregate_quantile, pooled_quantile
from repro.core.arrival import DeterministicArrivals
from repro.core.bench import BenchConfig, TestBench
from repro.core.treadmill import TreadmillConfig, TreadmillInstance
from repro.loadtesters.mutilate import MutilateTester
from repro.stats.histogram import AdaptiveHistogram
from repro.workloads.memcached import MemcachedWorkload

UTILIZATION = 0.8
SAMPLES = 8_000


def open_loop_truth(seed=21, arrival_factory=None):
    """NIC-level p99 measured by a fleet of Treadmill instances."""
    bench = TestBench(BenchConfig(workload=MemcachedWorkload(), seed=seed))
    rate = bench.server.arrival_rate_for_utilization(UTILIZATION) * 1e6
    instances = []
    for i in range(8):
        arrival = arrival_factory(rate / 8) if arrival_factory else None
        instances.append(
            TreadmillInstance(
                bench,
                f"tm{i}",
                TreadmillConfig(
                    rate_rps=rate / 8,
                    connections=8,
                    warmup_samples=300,
                    measurement_samples=SAMPLES // 8,
                    keep_raw=True,
                    arrival=arrival,
                ),
            )
        )
    for inst in instances:
        inst.start()
    bench.run_to_completion(instances)
    reports = [inst.report() for inst in instances]
    gt = np.concatenate([r.ground_truth_samples for r in reports])
    samples_by_client = {r.name: np.asarray(r.raw_samples) for r in reports}
    return gt, samples_by_client


@pytest.mark.artifact("ablation")
def test_ablation_closed_loop_underestimates(benchmark, show):
    """Removing the open-loop controller (keeping everything else)
    truncates the measured tail."""

    def run():
        gt_open, _ = open_loop_truth()
        bench = TestBench(BenchConfig(workload=MemcachedWorkload(), seed=21))
        rate = bench.server.arrival_rate_for_utilization(UTILIZATION) * 1e6
        tester = MutilateTester(
            bench, rate, measurement_samples=SAMPLES, warmup_samples=300
        )
        tester.start()
        bench.run_to_completion([tester])
        gt_closed = tester.report().ground_truth_samples
        return float(np.quantile(gt_open, 0.99)), float(np.quantile(gt_closed, 0.99))

    open_p99, closed_p99 = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Ablation: controller — NIC-level p99 "
        f"open-loop={open_p99:.1f} us vs closed-loop={closed_p99:.1f} us"
    )
    assert closed_p99 < 0.8 * open_p99


@pytest.mark.artifact("ablation")
def test_ablation_deterministic_arrivals_undershoot(benchmark, show):
    """Open-loop but metronome-paced gaps also underestimate queueing:
    the exponential gap distribution is load-bearing."""

    def run():
        gt_poisson, _ = open_loop_truth(seed=22)
        gt_constant, _ = open_loop_truth(
            seed=22, arrival_factory=lambda rate: DeterministicArrivals(rate)
        )
        return (
            float(np.quantile(gt_poisson, 0.99)),
            float(np.quantile(gt_constant, 0.99)),
        )

    poisson_p99, constant_p99 = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Ablation: arrival process — NIC-level p99 "
        f"poisson={poisson_p99:.1f} us vs deterministic={constant_p99:.1f} us"
    )
    assert constant_p99 < poisson_p99


@pytest.mark.artifact("ablation")
def test_ablation_pooled_aggregation_bias(benchmark, show):
    """Replacing per-instance metric aggregation with pooled
    distributions lets one cross-rack client own the estimate."""

    def run():
        bench = TestBench(BenchConfig(workload=MemcachedWorkload(), seed=23))
        rate = bench.server.arrival_rate_for_utilization(0.5) * 1e6
        instances = []
        for i in range(4):
            rack = "rack1" if i == 0 else bench.config.server_rack
            instances.append(
                TreadmillInstance(
                    bench,
                    f"tm{i}",
                    TreadmillConfig(
                        rate_rps=rate / 4,
                        connections=8,
                        warmup_samples=300,
                        measurement_samples=2500,
                        keep_raw=True,
                    ),
                    rack=rack,
                )
            )
        for inst in instances:
            inst.start()
        bench.run_to_completion(instances)
        samples = {
            inst.name: np.asarray(inst.report().raw_samples) for inst in instances
        }
        return (
            pooled_quantile(samples, 0.99),
            aggregate_quantile(samples, 0.99, "median"),
        )

    pooled, sound = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Ablation: aggregation — p99 pooled="
        f"{pooled:.1f} us vs per-instance-median={sound:.1f} us"
    )
    assert pooled > 1.2 * sound


@pytest.mark.artifact("ablation")
def test_ablation_static_histogram_bias(benchmark, show):
    """Replacing the adaptive histogram with static bins (calibrated on
    early, low-latency samples and clamped at the cap) underestimates
    the tail when latency rises — the Section II-B failure mode."""

    def run():
        rng = np.random.default_rng(24)
        # Latency ramps up as the server approaches steady state.
        early = rng.exponential(50.0, size=1000)
        late = rng.exponential(400.0, size=9000) + 100.0
        stream = np.concatenate([early, late])

        adaptive = AdaptiveHistogram(num_bins=256, calibration_size=500)
        adaptive.extend(stream)

        # Static histogram: bins fixed from the first 500 samples' max.
        cap = float(early[:500].max())
        clipped = np.minimum(stream, cap)
        return (
            float(np.quantile(stream, 0.99)),
            adaptive.quantile(0.99),
            float(np.quantile(clipped, 0.99)),
        )

    exact, adaptive_p99, static_p99 = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Ablation: histogram — p99 exact="
        f"{exact:.1f}, adaptive={adaptive_p99:.1f}, static-bins={static_p99:.1f} us"
    )
    assert abs(adaptive_p99 - exact) / exact < 0.1
    assert static_p99 < 0.5 * exact


@pytest.mark.artifact("ablation")
def test_ablation_wrk2_constant_throughput(benchmark, show):
    """A wrk2-style tester (open-loop but metronome-paced) fixes the
    closed-loop flaw yet still sits slightly below the Poisson-driven
    ground truth — the gap *distribution* matters, not just
    open-loop-ness."""
    from repro.loadtesters.wrk2 import Wrk2Tester

    def run():
        gt_open_parts, gt_wrk2_parts = [], []
        for seed in (25, 26):
            gt_open, _ = open_loop_truth(seed=seed)
            bench = TestBench(BenchConfig(workload=MemcachedWorkload(), seed=seed))
            rate = bench.server.arrival_rate_for_utilization(UTILIZATION) * 1e6
            tester = Wrk2Tester(
                bench, rate, measurement_samples=SAMPLES, warmup_samples=300
            )
            tester.start()
            bench.run_to_completion([tester])
            gt_open_parts.append(gt_open)
            gt_wrk2_parts.append(tester.report().ground_truth_samples)
        return (
            float(np.quantile(np.concatenate(gt_open_parts), 0.99)),
            float(np.quantile(np.concatenate(gt_wrk2_parts), 0.99)),
        )

    poisson_p99, wrk2_p99 = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Ablation: wrk2-style pacing — NIC-level p99 "
        f"poisson={poisson_p99:.1f} us vs wrk2={wrk2_p99:.1f} us"
    )
    # Far better than closed loop (no 2x truncation), mildly low.
    assert wrk2_p99 > 0.55 * poisson_p99
    assert wrk2_p99 < 1.05 * poisson_p99
